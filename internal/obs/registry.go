// Package obs is the repository's observability layer: an atomic
// metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus text exposition), a leveled structured logger, and
// lightweight timing spans. It exists so drevald, the estimators and
// the parallel pool can export the paper's regime diagnostics — ESS,
// weight tails, zero-support counts (§4.1) — continuously instead of
// once per response.
//
// The package depends only on the standard library and is safe for
// concurrent use throughout. Instrumentation must never perturb
// results: nothing here draws randomness from the evaluation RNG
// streams, and every metric operation is a plain atomic on a cached
// pointer, so the determinism guarantee of internal/parallel
// (bit-identical output at every worker count) is preserved with
// instrumentation enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Package-level instrumentation
// (the parallel pool gauges, drevald's request metrics) registers here
// so one /metrics endpoint exposes every layer.
var Default = NewRegistry()

// Label is one metric dimension, e.g. {Key: "route", Value: "/evaluate"}.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates metric families. kindUnset marks a family created
// by Help before any metric registered under the name; the first real
// registration adopts it.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindUnset
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending, exclusive of the implicit +Inf bucket) and tracks the sum
// of observed values. Safe for concurrent use.
type Histogram struct {
	upper   []float64       // bucket upper bounds, ascending
	counts  []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Uint64
	// exemplars holds, per bucket, the most recent traced observation
	// (ObserveExemplar); nil entries mean the bucket has none yet.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation to the trace that produced
// it, so a fat p99 bucket points at a timeline instead of a mystery.
type Exemplar struct {
	// Value is the observed value.
	Value float64 `json:"value"`
	// TraceID is the trace/correlation ID of the producing request.
	TraceID string `json:"traceId"`
}

// bucketIndex returns the bucket v falls into. A linear scan beats
// binary search at these bucket counts (≤ ~20) and keeps the hot path
// branch-predictable.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers (value, traceID) as
// the bucket's exemplar — last writer wins. An empty traceID degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if traceID != "" {
		h.exemplars[h.bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
	}
	h.Observe(v)
}

// BucketExemplar returns bucket i's exemplar (i == len(buckets) is the
// +Inf bucket), or nil when the bucket has none.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n exponentially spaced bucket upper bounds
// start, start*factor, start*factor², …. It panics on invalid
// arguments, as bucket layouts are compile-time decisions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// TimeBuckets is the default layout for duration histograms:
// 0.5 ms … ~16 s in doubling steps.
var TimeBuckets = ExpBuckets(0.0005, 2, 16)

// family groups every label combination of one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64          // histograms only
	series  map[string]any     // label string → *Counter | *Gauge | *Histogram
}

// Registry is a goroutine-safe collection of metric families. Metric
// lookup (get-or-create) takes a mutex; the returned metric pointers
// are lock-free, so callers on hot paths cache them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	samplers []func()
	// traceRec, when set, receives every completed span (see trace.go).
	traceRec atomic.Pointer[TraceRecorder]
}

// RegisterSampler adds a function invoked at the start of every
// exposition (WritePrometheus, Snapshot), before the registry lock is
// taken. Samplers pull point-in-time state — runtime memory stats,
// queue depths — into gauges so scrape-time values are fresh without a
// background poller.
func (r *Registry) RegisterSampler(f func()) {
	r.mu.Lock()
	r.samplers = append(r.samplers, f)
	r.mu.Unlock()
}

// runSamplers invokes the registered samplers outside the registry
// lock (samplers set gauges, which relock internally).
func (r *Registry) runSamplers() {
	r.mu.Lock()
	fs := make([]func(), len(r.samplers))
	copy(fs, r.samplers)
	r.mu.Unlock()
	for _, f := range fs {
		f()
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders labels in sorted key order as
// `k1="v1",k2="v2"`, the form used both as the series key and in the
// Prometheus exposition.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series for (name, labels), creating family and
// series as needed. It panics if name is already registered with a
// different kind or bucket layout — a programmer error, not a runtime
// condition.
func (r *Registry) lookup(name string, k kind, buckets []float64, labels []Label) any {
	ls := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
	} else if f.kind == kindUnset {
		f.kind = k
		f.buckets = buckets
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	s, ok := f.series[ls]
	if !ok {
		switch k {
		case kindCounter:
			s = &Counter{}
		case kindGauge:
			s = &Gauge{}
		default:
			h := &Histogram{upper: f.buckets}
			h.counts = make([]atomic.Uint64, len(f.buckets)+1)
			h.exemplars = make([]atomic.Pointer[Exemplar], len(f.buckets)+1)
			s = h
		}
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use. Later calls for the same
// name may pass nil buckets; if they pass a layout it must match the
// first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = TimeBuckets
	}
	h := r.lookup(name, kindHistogram, buckets, labels).(*Histogram)
	return h
}

// Help sets the HELP text emitted for a metric family.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
	} else {
		r.families[name] = &family{name: name, help: text, series: map[string]any{}, kind: kindUnset}
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the classic Prometheus text
// exposition format (version 0.0.4), families and series in sorted
// order so output is stable for tests and diffing. Exemplars are never
// emitted here: the 0.0.4 parser only treats '#' as a comment at line
// start, so an exemplar suffix on a sample line would make a standard
// Prometheus scrape fail outright. Scrapers that understand exemplars
// negotiate WriteOpenMetrics via MetricsHandler instead.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders every family in OpenMetrics text format
// (application/openmetrics-text): the classic layout plus histogram
// bucket exemplars and the mandatory `# EOF` terminator. Counter
// family metadata drops the `_total` suffix, as the spec requires
// (`# TYPE foo counter` describing the `foo_total` sample); a counter
// whose name lacks the suffix is declared `unknown` so the exposition
// stays parseable.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.runSamplers()
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	type snap struct {
		f      *family
		keys   []string
		series []any
	}
	snaps := make([]snap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		snaps = append(snaps, snap{f, keys, series})
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, s := range snaps {
		if len(s.series) == 0 {
			continue
		}
		metaName, metaKind := s.f.name, s.f.kind.String()
		if openMetrics && s.f.kind == kindCounter {
			if strings.HasSuffix(s.f.name, "_total") {
				metaName = strings.TrimSuffix(s.f.name, "_total")
			} else {
				metaKind = "unknown"
			}
		}
		if s.f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", metaName, s.f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", metaName, metaKind)
		for i, key := range s.keys {
			switch m := s.series[i].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", s.f.name, wrapLabels(key), m.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", s.f.name, wrapLabels(key), formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(&sb, s.f.name, key, m, openMetrics)
			}
		}
	}
	if openMetrics {
		sb.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func wrapLabels(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// writeHistogram emits cumulative buckets, sum and count for one
// histogram series. The le label is appended after any series labels.
// With exemplars enabled (OpenMetrics only — the 0.0.4 format cannot
// represent them), buckets that carry one get it appended as
// ` # {trace_id="…"} value`.
func writeHistogram(sb *strings.Builder, name, key string, h *Histogram, exemplars bool) {
	prefix := name + "_bucket{"
	if key != "" {
		prefix += key + ","
	}
	var cum uint64
	for i := 0; i <= len(h.upper); i++ {
		cum += h.counts[i].Load()
		ub := "+Inf"
		if i < len(h.upper) {
			ub = formatFloat(h.upper[i])
		}
		var ex string
		if exemplars {
			ex = exemplarSuffix(h.BucketExemplar(i))
		}
		fmt.Fprintf(sb, "%sle=%q} %d%s\n", prefix, ub, cum, ex)
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, wrapLabels(key), formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, wrapLabels(key), h.count.Load())
}

// exemplarSuffix renders an OpenMetrics exemplar annotation, or "" when
// the bucket has none.
func exemplarSuffix(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(e.Value))
}

// Snapshot returns a JSON-encodable view of every metric, keyed
// "name" or "name{labels}", for /debug/vars-style endpoints.
func (r *Registry) Snapshot() map[string]any {
	r.runSamplers()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.families))
	for name, f := range r.families {
		for key, s := range f.series {
			full := name + wrapLabels(key)
			switch m := s.(type) {
			case *Counter:
				out[full] = m.Value()
			case *Gauge:
				out[full] = m.Value()
			case *Histogram:
				buckets := make(map[string]uint64, len(m.upper)+1)
				var cum uint64
				for i, ub := range m.upper {
					cum += m.counts[i].Load()
					buckets[formatFloat(ub)] = cum
				}
				cum += m.counts[len(m.upper)].Load()
				buckets["+Inf"] = cum
				view := map[string]any{
					"count":   m.Count(),
					"sum":     m.Sum(),
					"buckets": buckets,
				}
				exemplars := map[string]*Exemplar{}
				for i := range m.exemplars {
					if e := m.exemplars[i].Load(); e != nil {
						ub := "+Inf"
						if i < len(m.upper) {
							ub = formatFloat(m.upper[i])
						}
						exemplars[ub] = e
					}
				}
				if len(exemplars) > 0 {
					view["exemplars"] = exemplars
				}
				out[full] = view
			}
		}
	}
	return out
}

// MetricsHandler serves the registry over HTTP, negotiating the format
// from the Accept header: scrapers that ask for
// application/openmetrics-text get the OpenMetrics exposition with
// bucket exemplars and `# EOF`; everyone else gets classic
// text/plain 0.0.4 without exemplars, which a stock Prometheus parses
// cleanly.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
