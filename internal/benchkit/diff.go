package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
)

// Thresholds are the per-metric regression limits Diff applies, each a
// fractional change relative to the baseline (0.30 = 30%). They are
// deliberately loose: the harness runs on shared, noisy machines, and
// the trajectory exists to catch order-of-magnitude drifts, not 3%
// jitter.
type Thresholds struct {
	// MaxThroughputDrop flags cells whose ops/s fell by more than this
	// fraction.
	MaxThroughputDrop float64 `json:"maxThroughputDrop"`
	// MaxLatencyGrowth flags cells whose p95 grew by more than this
	// fraction.
	MaxLatencyGrowth float64 `json:"maxLatencyGrowth"`
	// MaxAllocGrowth flags cells whose allocs/op grew by more than this
	// fraction. Allocation counts are nearly noise-free, so this is the
	// tightest signal of the three.
	MaxAllocGrowth float64 `json:"maxAllocGrowth"`
	// MinReliableP50Ms gates the TIMING checks: when both the baseline
	// and current p50 are below it, the cell is too fast for wall-clock
	// comparisons on shared runners (a few µs of scheduler jitter reads
	// as a 2× "regression"), so throughput and latency are skipped for
	// that cell. Allocation checks always apply — they are
	// deterministic at any speed. Zero disables the gate.
	MinReliableP50Ms float64 `json:"minReliableP50Ms,omitempty"`
}

// DefaultThresholds returns the limits used when none are configured.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxThroughputDrop: 0.40,
		MaxLatencyGrowth:  0.60,
		MaxAllocGrowth:    0.25,
		MinReliableP50Ms:  0.5,
	}
}

// Regression is one threshold violation found by Diff.
type Regression struct {
	// CellKey identifies the workload cell ("dr/n=10000/w=8").
	CellKey string `json:"cell"`
	// Metric names what regressed ("opsPerSec", "p95Ms", "allocsPerOp").
	Metric string `json:"metric"`
	// Baseline and Current are the two values; ChangeFrac the relative
	// change (positive = worse).
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	ChangeFrac float64 `json:"changeFrac"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: baseline %.4g → current %.4g (%+.0f%%)",
		r.CellKey, r.Metric, r.Baseline, r.Current, r.ChangeFrac*100)
}

// Diff compares current against baseline cell by cell and returns every
// threshold violation. Cells present in only one report are skipped —
// adding a workload must not fail the first run that has it. A nil
// baseline yields no regressions.
func Diff(current, baseline *Report, th Thresholds) []Regression {
	if current == nil || baseline == nil {
		return nil
	}
	var out []Regression
	for _, cur := range current.Cells {
		base := baseline.FindCell(cur.Key())
		if base == nil {
			continue
		}
		timeable := th.MinReliableP50Ms <= 0 ||
			base.P50Ms >= th.MinReliableP50Ms || cur.P50Ms >= th.MinReliableP50Ms
		if timeable && th.MaxThroughputDrop > 0 && base.OpsPerSec > 0 {
			drop := (base.OpsPerSec - cur.OpsPerSec) / base.OpsPerSec
			if drop > th.MaxThroughputDrop {
				out = append(out, Regression{
					CellKey: cur.Key(), Metric: "opsPerSec",
					Baseline: base.OpsPerSec, Current: cur.OpsPerSec, ChangeFrac: drop,
				})
			}
		}
		if timeable && th.MaxLatencyGrowth > 0 && base.P95Ms > 0 {
			growth := (cur.P95Ms - base.P95Ms) / base.P95Ms
			if growth > th.MaxLatencyGrowth {
				out = append(out, Regression{
					CellKey: cur.Key(), Metric: "p95Ms",
					Baseline: base.P95Ms, Current: cur.P95Ms, ChangeFrac: growth,
				})
			}
		}
		if th.MaxAllocGrowth > 0 && base.AllocsPerOp > 0 {
			growth := (cur.AllocsPerOp - base.AllocsPerOp) / base.AllocsPerOp
			if growth > th.MaxAllocGrowth {
				out = append(out, Regression{
					CellKey: cur.Key(), Metric: "allocsPerOp",
					Baseline: base.AllocsPerOp, Current: cur.AllocsPerOp, ChangeFrac: growth,
				})
			}
		}
	}
	return out
}

// WriteReport marshals rep (indented, trailing newline) to path.
func WriteReport(path string, rep *Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads a report written by WriteReport and rejects unknown
// schema versions, so trajectory tooling fails loudly instead of
// comparing incomparable layouts.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("benchkit: parsing %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchkit: %s has schema version %d, this binary understands %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}
