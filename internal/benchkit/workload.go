package benchkit

import (
	"fmt"

	"drnet/internal/core"
	"drnet/internal/traceio"
	"drnet/internal/wideevent"
)

// decisions is the synthetic workload's action space.
var decisions = [3]string{"a", "b", "c"}

// SyntheticTrace generates a deterministic logged trace of n records:
// a small discrete context space (8×4 feature grid, so the table
// reward model has dense cells), a softly context-dependent logging
// policy, and a reward with decision- and context-dependent structure
// plus bounded noise. Identical (n, seed) inputs produce identical
// traces, byte for byte, so benchmark cells are comparable across
// processes and machines.
func SyntheticTrace(n int, seed int64) []traceio.FlatRecord {
	s := splitmix(uint64(seed) ^ 0x6265_6e63_686b_6974) // "benchkit"
	recs := make([]traceio.FlatRecord, n)
	for i := range recs {
		f0 := float64(i % 8)
		f1 := float64((i / 8) % 4)
		// Logging policy: favour decision (i%3) with p=0.6, split the
		// rest evenly — every decision has support everywhere, keeping
		// propensities in (0,1] and IPS weights bounded.
		favored := i % 3
		probs := [3]float64{0.2, 0.2, 0.2}
		probs[favored] = 0.6
		u := s.float64()
		var choice int
		switch {
		case u < probs[0]:
			choice = 0
		case u < probs[0]+probs[1]:
			choice = 1
		default:
			choice = 2
		}
		reward := 1.0/(1.0+f0) + 0.1*f1
		if choice == favored {
			reward += 0.5
		}
		reward += 0.1 * (s.float64() - 0.5)
		recs[i] = traceio.FlatRecord{
			Features:   []float64{f0, f1},
			Decision:   decisions[choice],
			Reward:     reward,
			Propensity: probs[choice],
		}
	}
	return recs
}

// splitmix is a SplitMix64 stream: tiny, deterministic, and
// independent of the evaluation RNGs in internal/parallel, so the
// harness can never perturb what it measures.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// workloadData is the shared per-(size, seed) input every estimator
// cell runs against: the trace, its columnar view, and the target
// policy.
type workloadData struct {
	trace  core.Trace[traceio.FlatContext, string]
	view   *core.TraceView[traceio.FlatContext, string]
	policy core.Policy[traceio.FlatContext, string]
}

func modelKey(c traceio.FlatContext, d string) string { return c.Key() + "|" + d }

// newWorkloadData builds the inputs for one (size, seed) combination.
func newWorkloadData(size int, seed int64) *workloadData {
	trace := traceio.ToCore(traceio.FlatTrace{Records: SyntheticTrace(size, seed)})
	policy, err := traceio.ParsePolicy("best-observed", trace)
	if err != nil {
		// The synthetic trace always has observed decisions; reaching
		// this is a programmer error in the generator.
		panic(fmt.Sprintf("benchkit: building workload policy: %v", err))
	}
	view, err := core.NewTraceViewKeyed(trace, traceio.FlatContext.Key)
	if err != nil {
		// SyntheticTrace only emits valid records; reaching this is a
		// programmer error in the generator.
		panic(fmt.Sprintf("benchkit: building workload view: %v", err))
	}
	return &workloadData{trace: trace, view: view, policy: policy}
}

// workloads maps estimator names to cell constructors. Each returned
// closure performs one full operation of the kind drevald serves —
// including the model fit for the model-based estimators, since that
// is part of every real request. The unsuffixed cells run the columnar
// TraceView hot path drevald now serves; the "_slice" cells keep the
// record-slice implementations so every report carries the
// columnar-vs-slice comparison (the equivalence suite in internal/core
// proves both compute bit-identical results).
// drEventsCell is one DR operation wrapped in the same wide-event
// choreography drevald performs per request. A nil journal yields a
// nil builder whose methods no-op — the measured baseline for the
// events_on/events_off overhead comparison.
func drEventsCell(w *workloadData, j *wideevent.Journal) func() error {
	return func() error {
		evb := j.Begin("bench", "/evaluate")
		evb.SetPolicy("best-observed")
		endFit := evb.Phase("fit_model")
		model := core.FitTableView(w.view)
		endFit()
		endDR := evb.Phase("dr")
		_, err := core.DoublyRobustView(w.view, w.policy, model, core.DROptions{})
		endDR()
		if err != nil {
			evb.SetError(err.Error())
			evb.Finish(500)
			return err
		}
		evb.SetRegime(0.5, 2, 0)
		evb.Finish(200)
		return nil
	}
}

var workloads = map[string]func(*workloadData, Config) func() error{
	"dm": func(w *workloadData, _ Config) func() error {
		return func() error {
			model := core.FitTableView(w.view)
			_, err := core.DirectMethodView(w.view, w.policy, model)
			return err
		}
	},
	"ips": func(w *workloadData, _ Config) func() error {
		return func() error {
			_, err := core.IPSView(w.view, w.policy, core.IPSOptions{})
			return err
		}
	},
	"dr": func(w *workloadData, _ Config) func() error {
		return func() error {
			model := core.FitTableView(w.view)
			_, err := core.DoublyRobustView(w.view, w.policy, model, core.DROptions{})
			return err
		}
	},
	"bootstrap": func(w *workloadData, cfg Config) func() error {
		return func() error {
			_, err := core.BootstrapDRViewSeeded(w.view, w.policy, core.DROptions{},
				cfg.Seed, cfg.BootstrapResamples, 0.95)
			return err
		}
	},
	// The events cells price the wide-event journal on the request hot
	// path: dr_events_on runs DR through a live journal (begin,
	// per-phase timing, regime annotation, finish/commit), dr_events_off
	// runs the identical instrumentation against a nil journal — the
	// disabled path drevald takes with journalling off. The pair is the
	// bench-guard evidence that one event per request stays in budget.
	"dr_events_on": func(w *workloadData, cfg Config) func() error {
		j := wideevent.NewJournal(wideevent.Options{Capacity: 1024, SampleRate: 1, Seed: uint64(cfg.Seed)})
		return drEventsCell(w, j)
	},
	"dr_events_off": func(w *workloadData, _ Config) func() error {
		return drEventsCell(w, nil)
	},
	"dm_slice": func(w *workloadData, _ Config) func() error {
		return func() error {
			model := core.FitTable(w.trace, modelKey)
			_, err := core.DirectMethod(w.trace, w.policy, model)
			return err
		}
	},
	"ips_slice": func(w *workloadData, _ Config) func() error {
		return func() error {
			_, err := core.IPS(w.trace, w.policy, core.IPSOptions{})
			return err
		}
	},
	"dr_slice": func(w *workloadData, _ Config) func() error {
		return func() error {
			model := core.FitTable(w.trace, modelKey)
			_, err := core.DoublyRobust(w.trace, w.policy, model, core.DROptions{})
			return err
		}
	},
	"bootstrap_slice": func(w *workloadData, cfg Config) func() error {
		return func() error {
			_, err := core.BootstrapSeeded(w.trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
				m := core.FitTable(t, modelKey)
				return core.DoublyRobust(t, w.policy, m, core.DROptions{})
			}, cfg.Seed, cfg.BootstrapResamples, 0.95)
			return err
		}
	},
}
