package benchkit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"drnet/internal/slo"
	"drnet/internal/traceio"
)

func TestSyntheticTraceDeterministicAndValid(t *testing.T) {
	a := SyntheticTrace(500, 7)
	b := SyntheticTrace(500, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (n, seed) produced different traces")
	}
	c := SyntheticTrace(500, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: a})
	if err := trace.Validate(); err != nil {
		t.Fatalf("synthetic trace invalid: %v", err)
	}
	// Every decision must appear, so best-observed and the table model
	// have full support.
	counts := trace.DecisionCounts()
	for _, d := range decisions {
		if counts[d] == 0 {
			t.Fatalf("decision %q absent from synthetic trace", d)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if got := Percentile(vals, 0.5); got != 3 {
		t.Fatalf("p50 = %g, want 3", got)
	}
	if got := Percentile(vals, 0.99); got != 5 {
		t.Fatalf("p99 = %g, want 5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %g, want 0", got)
	}
	if vals[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRunProducesEveryCell(t *testing.T) {
	cfg := Config{
		Sizes:              []int{50, 100, 200},
		Workers:            []int{1, 2},
		Estimators:         []string{"dm", "ips", "dr", "bootstrap"},
		Iters:              2,
		BootstrapResamples: 5,
		Seed:               1,
	}
	rep, err := Run(cfg, "test-version", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Version != "test-version" {
		t.Fatalf("report header: %+v", rep)
	}
	want := len(cfg.Sizes) * len(cfg.Workers) * len(cfg.Estimators)
	if len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		seen[c.Key()] = true
		if c.OpsPerSec <= 0 {
			t.Fatalf("cell %s has non-positive throughput", c.Key())
		}
		if c.P50Ms < 0 || c.P50Ms > c.P95Ms || c.P95Ms > c.P99Ms {
			t.Fatalf("cell %s percentiles out of order: p50=%g p95=%g p99=%g",
				c.Key(), c.P50Ms, c.P95Ms, c.P99Ms)
		}
		if c.PeakHeapBytes == 0 {
			t.Fatalf("cell %s has zero peak heap", c.Key())
		}
	}
	for _, w := range cfg.Workers {
		for _, s := range cfg.Sizes {
			for _, e := range cfg.Estimators {
				key := Cell{Estimator: e, Size: s, Workers: w}.Key()
				if !seen[key] {
					t.Fatalf("missing cell %s", key)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatalf("QuickConfig invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Estimators = []string{"nope"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown estimator accepted")
	}
	bad = DefaultConfig()
	bad.Iters = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero iters accepted")
	}
}

func TestDiffFlagsRegressionsAndSkipsNewCells(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion}
	base.Cells = []CellResult{{
		Cell:    Cell{Estimator: "dr", Size: 1000, Workers: 1},
		Metrics: Metrics{OpsPerSec: 100, P95Ms: 10, AllocsPerOp: 1000},
	}}
	th := Thresholds{MaxThroughputDrop: 0.3, MaxLatencyGrowth: 0.5, MaxAllocGrowth: 0.25}

	// Identical report: clean.
	if regs := Diff(base, base, th); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}

	// All three metrics regressed past their thresholds.
	cur := &Report{SchemaVersion: SchemaVersion}
	cur.Cells = []CellResult{
		{
			Cell:    Cell{Estimator: "dr", Size: 1000, Workers: 1},
			Metrics: Metrics{OpsPerSec: 50, P95Ms: 20, AllocsPerOp: 2000},
		},
		{
			// A cell absent from the baseline must not be flagged.
			Cell:    Cell{Estimator: "ips", Size: 1000, Workers: 1},
			Metrics: Metrics{OpsPerSec: 1, P95Ms: 1000, AllocsPerOp: 1e9},
		},
	}
	regs := Diff(cur, base, th)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3: %v", len(regs), regs)
	}
	metrics := map[string]bool{}
	for _, r := range regs {
		if r.CellKey != "dr/n=1000/w=1" {
			t.Fatalf("unexpected cell %q", r.CellKey)
		}
		metrics[r.Metric] = true
		if r.ChangeFrac <= 0 {
			t.Fatalf("regression with non-positive change: %+v", r)
		}
	}
	for _, m := range []string{"opsPerSec", "p95Ms", "allocsPerOp"} {
		if !metrics[m] {
			t.Fatalf("metric %s not flagged: %v", m, regs)
		}
	}

	// Small drifts inside the thresholds stay clean.
	cur.Cells[0].Metrics = Metrics{OpsPerSec: 90, P95Ms: 11, AllocsPerOp: 1100}
	if regs := Diff(cur, base, th); len(regs) != 0 {
		t.Fatalf("in-threshold drift flagged: %v", regs)
	}
	if regs := Diff(cur, nil, th); regs != nil {
		t.Fatalf("nil baseline produced regressions: %v", regs)
	}
}

func TestDiffMinReliableP50GatesTimingOnly(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion}
	base.Cells = []CellResult{{
		Cell:    Cell{Estimator: "ips", Size: 500, Workers: 1},
		Metrics: Metrics{OpsPerSec: 100000, P50Ms: 0.01, P95Ms: 0.02, AllocsPerOp: 100},
	}}
	cur := &Report{SchemaVersion: SchemaVersion}
	cur.Cells = []CellResult{{
		// Timing "regressed" 2× but both p50s sit under the gate;
		// allocs regressed too, and those must still be flagged.
		Cell:    Cell{Estimator: "ips", Size: 500, Workers: 1},
		Metrics: Metrics{OpsPerSec: 50000, P50Ms: 0.02, P95Ms: 0.04, AllocsPerOp: 200},
	}}
	th := Thresholds{MaxThroughputDrop: 0.3, MaxLatencyGrowth: 0.5, MaxAllocGrowth: 0.25, MinReliableP50Ms: 0.05}
	regs := Diff(cur, base, th)
	if len(regs) != 1 || regs[0].Metric != "allocsPerOp" {
		t.Fatalf("gated diff = %v, want exactly the allocsPerOp regression", regs)
	}
	// Once either side's p50 clears the gate, timing checks apply.
	cur.Cells[0].P50Ms = 0.06
	regs = Diff(cur, base, th)
	metrics := map[string]bool{}
	for _, r := range regs {
		metrics[r.Metric] = true
	}
	if !metrics["opsPerSec"] || !metrics["p95Ms"] || !metrics["allocsPerOp"] {
		t.Fatalf("ungated diff missing metrics: %v", regs)
	}
	// Zero disables the gate entirely.
	cur.Cells[0].P50Ms = 0.02
	th.MinReliableP50Ms = 0
	if regs := Diff(cur, base, th); len(regs) != 3 {
		t.Fatalf("disabled gate: got %v, want 3 regressions", regs)
	}
}

func TestReportRoundTripAndSchemaGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	rep := &Report{SchemaVersion: SchemaVersion, Version: "v", Timestamp: "2026-08-05T00:00:00Z"}
	rep.Cells = []CellResult{{Cell: Cell{Estimator: "dm", Size: 100, Workers: 1}, Iters: 3}}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, rep)
	}
	rep.SchemaVersion = SchemaVersion + 1
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

func TestRunHTTPAgainstStubServer(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/evaluate" || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		var body struct {
			Trace  []json.RawMessage `json:"trace"`
			Policy string            `json:"policy"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("decoding loadgen body: %v", err)
		}
		if len(body.Trace) != 50 || body.Policy != "best-observed" {
			t.Errorf("loadgen body: %d records, policy %q", len(body.Trace), body.Policy)
		}
		requests.Add(1)
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()

	res, err := RunHTTP(HTTPConfig{
		URL: srv.URL, Requests: 8, Concurrency: 2, TraceSize: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 || res.Errors != 0 || requests.Load() != 8 {
		t.Fatalf("requests=%d errors=%d served=%d", res.Requests, res.Errors, requests.Load())
	}
	if res.StatusCount["200"] != 8 {
		t.Fatalf("status census = %v", res.StatusCount)
	}
	if res.OpsPerSec <= 0 || res.P50Ms < 0 || res.P50Ms > res.P99Ms {
		t.Fatalf("implausible loadgen metrics: %+v", res)
	}
	avail := complianceByName(res.SLO, "availability")
	if avail == nil || avail.Total != 8 || avail.Good != 8 || !avail.Met {
		t.Fatalf("availability compliance = %+v", avail)
	}

	// A failing server is counted, not fatal.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	res, err = RunHTTP(HTTPConfig{URL: bad.URL, Requests: 3, Concurrency: 1, TraceSize: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3 || res.StatusCount["500"] != 3 {
		t.Fatalf("error census = %+v", res)
	}
	if avail := complianceByName(res.SLO, "availability"); avail == nil || avail.Good != 0 || avail.Met {
		t.Fatalf("availability compliance of all-500 run = %+v", avail)
	}

	if _, err := RunHTTP(HTTPConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func complianceByName(cs []slo.Compliance, name string) *slo.Compliance {
	for i := range cs {
		if cs[i].Name == name {
			return &cs[i]
		}
	}
	return nil
}

// TestEventsOverheadCells checks the dr_events_on/off pair runs and
// that the on-cell really commits an event per iteration (the off
// cell's nil journal commits none, by construction).
func TestEventsOverheadCells(t *testing.T) {
	rep, err := Run(Config{
		Sizes:              []int{200},
		Workers:            []int{1},
		Estimators:         []string{"dr_events_on", "dr_events_off"},
		Iters:              3,
		BootstrapResamples: 5,
		Seed:               1,
	}, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"dr_events_on/n=200/w=1", "dr_events_off/n=200/w=1"} {
		cell := rep.FindCell(key)
		if cell == nil || cell.OpsPerSec <= 0 {
			t.Fatalf("cell %s missing or unmeasured: %+v", key, cell)
		}
	}
}

func TestRunIngestAgainstStubServer(t *testing.T) {
	var ingested atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ingest":
			var body struct {
				Records []json.RawMessage `json:"records"`
			}
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				t.Errorf("decoding ingest body: %v", err)
			}
			epoch := ingested.Add(int64(len(body.Records)))
			fmt.Fprintf(w, `{"acked":%d,"durable":true,"epoch":%d}`, len(body.Records), epoch)
		case "/evaluate":
			fmt.Fprint(w, `{}`)
		default:
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
	}))
	defer srv.Close()

	res, err := RunIngest(IngestConfig{URL: srv.URL, Records: 1000, BatchSize: 50, EvalSamples: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1000 || res.Batches != 20 || res.Errors != 0 || ingested.Load() != 1000 {
		t.Fatalf("ingest census: %+v (server saw %d)", res, ingested.Load())
	}
	if res.StatusCount["200"] != 20 {
		t.Fatalf("status census = %v", res.StatusCount)
	}
	// 10 evenly spaced checkpoints spanning the 10x growth, first at
	// records/10 and last at the full stream.
	if len(res.Checkpoints) != 10 ||
		res.Checkpoints[0].Epoch != 100 || res.Checkpoints[9].Epoch != 1000 {
		t.Fatalf("checkpoints = %+v", res.Checkpoints)
	}
	if res.EvalLatencyRatio <= 0 {
		t.Fatalf("flatness ratio not computed: %+v", res)
	}
	if res.RecordsPerSec <= 0 || res.AckP50Ms < 0 || res.AckP50Ms > res.AckP99Ms {
		t.Fatalf("implausible ingest metrics: %+v", res)
	}

	// Config validation.
	if _, err := RunIngest(IngestConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunIngest(IngestConfig{URL: srv.URL, Records: 50, BatchSize: 10}); err == nil {
		t.Fatal("undersized leg accepted")
	}

	// A non-200 ingest is an error, not a crash.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"no wal"}`, http.StatusNotFound)
	}))
	defer bad.Close()
	res, err = RunIngest(IngestConfig{URL: bad.URL, Records: 100, BatchSize: 100, EvalSamples: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 1 || res.StatusCount["404"] != 1 || res.Records != 0 {
		t.Fatalf("error census = %+v", res)
	}
}
