// Package benchkit is the repository's standardized performance
// harness: it runs the core estimators (DM, IPS, DR) and the seeded
// bootstrap over deterministic synthetic workloads at several trace
// sizes and worker-pool widths, measures throughput, latency
// percentiles, allocations and peak heap, and writes a versioned JSON
// report (BENCH_<timestamp>.json) that can be diffed against a
// checked-in baseline with per-metric regression thresholds.
//
// The point — following the paper's §4.1 argument that OPE numbers are
// only trustworthy alongside diagnostics — is that performance claims
// are only trustworthy alongside a recorded trajectory: every perf PR
// appends a report produced by the same workloads, so "made the hot
// path faster" is a diff against bench/baseline.json, not an anecdote.
package benchkit

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"drnet/internal/parallel"
)

// SchemaVersion identifies the report layout; bump it when fields
// change incompatibly so trajectory tooling can tell reports apart.
const SchemaVersion = 1

// Config selects what Run measures.
type Config struct {
	// Sizes are the synthetic trace lengths to measure (records).
	Sizes []int `json:"sizes"`
	// Workers are the worker-pool widths to measure at.
	Workers []int `json:"workers"`
	// Estimators are the workload names: "dm", "ips", "dr" and
	// "bootstrap" run the columnar TraceView hot path; the "_slice"
	// variants of each run the record-slice implementations for the
	// columnar-vs-slice comparison.
	Estimators []string `json:"estimators"`
	// Iters is the number of measured iterations per cell.
	Iters int `json:"iters"`
	// BootstrapResamples sizes the bootstrap workload.
	BootstrapResamples int `json:"bootstrapResamples"`
	// Seed drives the synthetic workload generator; identical seeds
	// yield identical traces, so reports are comparable across runs.
	Seed int64 `json:"seed"`
}

// DefaultConfig is the full standardized workload: three trace sizes
// spanning the sequential and parallel estimator regimes, three pool
// widths, every estimator.
func DefaultConfig() Config {
	return Config{
		Sizes:              []int{1000, 10000, 50000},
		Workers:            []int{1, 2, 8},
		Estimators:         []string{"dm", "ips", "dr", "bootstrap", "dm_slice", "ips_slice", "dr_slice", "bootstrap_slice", "dr_events_on", "dr_events_off"},
		Iters:              20,
		BootstrapResamples: 100,
		Seed:               1,
	}
}

// QuickConfig is the CI smoke variant: same shape (≥3 sizes × ≥2
// worker counts × all estimators) but small enough to finish in
// seconds on a noisy runner.
func QuickConfig() Config {
	return Config{
		Sizes:              []int{500, 2000, 8000},
		Workers:            []int{1, 2},
		Estimators:         []string{"dm", "ips", "dr", "bootstrap", "dm_slice", "ips_slice", "dr_slice", "bootstrap_slice", "dr_events_on", "dr_events_off"},
		Iters:              10,
		BootstrapResamples: 20,
		Seed:               1,
	}
}

// Validate rejects configs Run cannot execute.
func (c Config) Validate() error {
	if len(c.Sizes) == 0 || len(c.Workers) == 0 || len(c.Estimators) == 0 {
		return fmt.Errorf("benchkit: config needs at least one size, worker count and estimator")
	}
	for _, s := range c.Sizes {
		if s < 10 {
			return fmt.Errorf("benchkit: trace size %d too small (want >= 10)", s)
		}
	}
	for _, w := range c.Workers {
		if w < 1 {
			return fmt.Errorf("benchkit: worker count %d must be >= 1", w)
		}
	}
	for _, e := range c.Estimators {
		if _, ok := workloads[e]; !ok {
			return fmt.Errorf("benchkit: unknown estimator %q (want dm, ips, dr, bootstrap, a _slice variant, or dr_events_on/off)", e)
		}
	}
	if c.Iters < 1 {
		return fmt.Errorf("benchkit: iters %d must be >= 1", c.Iters)
	}
	if c.BootstrapResamples < 1 {
		return fmt.Errorf("benchkit: bootstrapResamples %d must be >= 1", c.BootstrapResamples)
	}
	return nil
}

// Metrics is one cell's measurement.
type Metrics struct {
	// OpsPerSec is iterations per wall-clock second.
	OpsPerSec float64 `json:"opsPerSec"`
	// P50Ms, P95Ms, P99Ms are latency percentiles in milliseconds
	// (nearest-rank over the measured iterations).
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	// AllocsPerOp is the heap-allocation count per iteration
	// (runtime.MemStats.Mallocs delta / iters).
	AllocsPerOp float64 `json:"allocsPerOp"`
	// BytesPerOp is cumulative allocated bytes per iteration.
	BytesPerOp float64 `json:"bytesPerOp"`
	// PeakHeapBytes is the largest HeapAlloc sampled during the cell.
	PeakHeapBytes uint64 `json:"peakHeapBytes"`
}

// Cell identifies one measured workload combination.
type Cell struct {
	Estimator string `json:"estimator"`
	Size      int    `json:"size"`
	Workers   int    `json:"workers"`
}

// Key renders the cell identity used to match baseline entries.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/n=%d/w=%d", c.Estimator, c.Size, c.Workers)
}

// CellResult is one cell plus its measurement.
type CellResult struct {
	Cell
	Iters int `json:"iters"`
	Metrics
}

// Report is the full output of one harness run — the unit of the
// repository's perf trajectory. Reports are written as
// BENCH_<timestamp>.json and diffed against bench/baseline.json.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	Version       string `json:"version"`
	Timestamp     string `json:"timestamp"`
	GoVersion     string `json:"goVersion"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Config        Config `json:"config"`
	// WallSeconds is the harness's total measurement wall time.
	WallSeconds float64      `json:"wallSeconds"`
	Cells       []CellResult `json:"cells"`
	// HTTP is the loadgen leg against a live drevald, present when one
	// was requested.
	HTTP *HTTPResult `json:"http,omitempty"`
	// Ingest is the streaming-ingestion leg (durable-ack throughput and
	// the O(1) evaluation flatness probe), present when one was
	// requested. Consumers must nil-guard: most runs have no WAL server.
	Ingest *IngestResult `json:"ingest,omitempty"`
}

// FindCell returns the result for a cell key, or nil.
func (r *Report) FindCell(key string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Key() == key {
			return &r.Cells[i]
		}
	}
	return nil
}

// Logf is the progress callback Run reports through; nil silences it.
type Logf func(format string, args ...any)

// Run executes every (estimator × size × workers) cell of cfg and
// returns the report. version stamps the report (pass
// obs.Version()); logf receives one line per cell. The worker-pool
// default width is mutated per cell and restored before returning.
func Run(cfg Config, version string, logf Logf) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Version:       version,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Config:        cfg,
	}
	prevWorkers := parallel.DefaultWorkers()
	defer parallel.SetDefaultWorkers(prevWorkers)

	start := time.Now()
	for _, w := range cfg.Workers {
		parallel.SetDefaultWorkers(w)
		for _, size := range cfg.Sizes {
			wl := newWorkloadData(size, cfg.Seed)
			for _, est := range cfg.Estimators {
				fn := workloads[est](wl, cfg)
				m, err := measure(cfg.Iters, fn)
				if err != nil {
					return nil, fmt.Errorf("benchkit: %s (n=%d, workers=%d): %w", est, size, w, err)
				}
				cell := CellResult{
					Cell:    Cell{Estimator: est, Size: size, Workers: w},
					Iters:   cfg.Iters,
					Metrics: m,
				}
				rep.Cells = append(rep.Cells, cell)
				logf("cell %-22s ops/s=%-10.1f p50=%.2fms p95=%.2fms p99=%.2fms allocs/op=%.0f",
					cell.Key(), m.OpsPerSec, m.P50Ms, m.P95Ms, m.P99Ms, m.AllocsPerOp)
			}
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	return rep, nil
}

// measure times iters sequential invocations of fn: a warmup pass, then
// per-iteration latencies, MemStats deltas for allocs, and periodic
// heap sampling for the peak.
func measure(iters int, fn func() error) (Metrics, error) {
	if err := fn(); err != nil { // warmup, also surfaces workload errors
		return Metrics{}, err
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	peak := before.HeapAlloc

	// Sample the heap a bounded number of times — ReadMemStats briefly
	// stops the world, so sampling every iteration would perturb the
	// latencies it sits next to.
	sampleEvery := iters / 8
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	lat := make([]float64, iters)
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return Metrics{}, err
		}
		lat[i] = time.Since(t0).Seconds()
		if (i+1)%sampleEvery == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	wall := time.Since(start).Seconds()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak {
		peak = after.HeapAlloc
	}

	m := Metrics{
		P50Ms:         Percentile(lat, 0.50) * 1000,
		P95Ms:         Percentile(lat, 0.95) * 1000,
		P99Ms:         Percentile(lat, 0.99) * 1000,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		PeakHeapBytes: peak,
	}
	if wall > 0 {
		m.OpsPerSec = float64(iters) / wall
	}
	return m, nil
}

// Percentile returns the nearest-rank p-th percentile (0 < p <= 1) of
// values; it does not mutate its argument.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
