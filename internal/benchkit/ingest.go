package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// IngestConfig describes the streaming-ingestion leg: batched POST
// /ingest calls against a live drevald with a WAL, interleaved with
// aggregate-served /evaluate probes. The leg exists to measure two
// things the cell matrix cannot: durable-ack ingest throughput, and
// the O(1) evaluation contract — streamed /evaluate latency must stay
// flat while the stream grows an order of magnitude.
type IngestConfig struct {
	// URL is the server base URL, e.g. http://127.0.0.1:8080. The
	// server must run with -wal-dir set.
	URL string `json:"url"`
	// Records is the total record count ingested across the leg.
	Records int `json:"records"`
	// BatchSize is records per /ingest call.
	BatchSize int `json:"batchSize"`
	// EvalSamples is the number of /evaluate probes per checkpoint.
	EvalSamples int `json:"evalSamples"`
	// Seed drives the synthetic payload generator.
	Seed int64 `json:"seed"`
	// Timeout bounds each request (0 = 30s).
	Timeout time.Duration `json:"-"`
}

// IngestCheckpoint is one /evaluate latency probe taken at a stream
// size. Comparing the first and last checkpoint is the O(1) evidence:
// under incremental aggregation the probes hit pre-folded sufficient
// statistics, so latency must not scale with Epoch.
type IngestCheckpoint struct {
	// Epoch is the stream size (total ingested records) at probe time.
	Epoch int `json:"epoch"`
	// EvalP50Ms / EvalP95Ms are streamed /evaluate latency percentiles.
	EvalP50Ms float64 `json:"evalP50Ms"`
	EvalP95Ms float64 `json:"evalP95Ms"`
}

// IngestResult is the leg's measurement. AckP* cover successful
// (200, durable) ingest acknowledgements only. EvalLatencyRatio is
// last-checkpoint p50 over first-checkpoint p50 — the flatness number
// the O(1) acceptance criterion reads (≈1.0 when evaluation cost is
// independent of stream size).
type IngestResult struct {
	Config           IngestConfig       `json:"config"`
	Batches          int                `json:"batches"`
	Records          int                `json:"records"`
	Errors           int                `json:"errors"`
	BatchesPerSec    float64            `json:"batchesPerSec"`
	RecordsPerSec    float64            `json:"recordsPerSec"`
	AckP50Ms         float64            `json:"ackP50Ms"`
	AckP95Ms         float64            `json:"ackP95Ms"`
	AckP99Ms         float64            `json:"ackP99Ms"`
	StatusCount      map[string]int     `json:"statusCount"`
	Checkpoints      []IngestCheckpoint `json:"checkpoints"`
	EvalLatencyRatio float64            `json:"evalLatencyRatio"`
}

// RunIngest streams cfg.Records synthetic records into a live drevald
// in cfg.BatchSize batches, probing streamed /evaluate latency at 10
// evenly spaced stream sizes (so first→last spans the 10× growth the
// acceptance criterion asks about). Ingestion is sequential by design:
// acks gate on durability, so a single producer measures the full
// fsync-inclusive ack path rather than queue-amortized throughput.
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("benchkit: ingest leg needs a server URL")
	}
	if cfg.Records < 100 || cfg.BatchSize < 1 || cfg.BatchSize > cfg.Records {
		return nil, fmt.Errorf("benchkit: ingest leg needs records >= 100 and 1 <= batchSize <= records")
	}
	if cfg.EvalSamples < 1 {
		cfg.EvalSamples = 20
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	base := strings.TrimRight(cfg.URL, "/")
	client := &http.Client{Timeout: timeout}

	all := SyntheticTrace(cfg.Records, cfg.Seed)
	evalBody, err := json.Marshal(map[string]any{"policy": "best-observed", "options": map[string]any{"clip": 10}})
	if err != nil {
		return nil, fmt.Errorf("benchkit: marshalling probe payload: %w", err)
	}

	res := &IngestResult{Config: cfg, StatusCount: map[string]int{}}
	var ackLat []float64
	checkpointEvery := cfg.Records / 10

	probe := func(epoch int) error {
		var lat []float64
		for i := 0; i < cfg.EvalSamples; i++ {
			t0 := time.Now()
			resp, err := client.Post(base+"/evaluate", "application/json", bytes.NewReader(evalBody))
			d := time.Since(t0).Seconds()
			if err != nil {
				return fmt.Errorf("benchkit: probe at epoch %d: %w", epoch, err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("benchkit: probe at epoch %d: status %d", epoch, resp.StatusCode)
			}
			lat = append(lat, d)
		}
		res.Checkpoints = append(res.Checkpoints, IngestCheckpoint{
			Epoch:     epoch,
			EvalP50Ms: Percentile(lat, 0.50) * 1000,
			EvalP95Ms: Percentile(lat, 0.95) * 1000,
		})
		return nil
	}

	start := time.Now()
	nextCheckpoint := checkpointEvery
	for off := 0; off < len(all); off += cfg.BatchSize {
		end := off + cfg.BatchSize
		if end > len(all) {
			end = len(all)
		}
		body, err := json.Marshal(map[string]any{"records": all[off:end]})
		if err != nil {
			return nil, fmt.Errorf("benchkit: marshalling batch: %w", err)
		}
		t0 := time.Now()
		resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(body))
		d := time.Since(t0).Seconds()
		res.Batches++
		if err != nil {
			res.Errors++
			res.StatusCount["transport-error"]++
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		res.StatusCount[fmt.Sprint(resp.StatusCode)]++
		if resp.StatusCode != http.StatusOK {
			res.Errors++
			continue
		}
		res.Records += end - off
		ackLat = append(ackLat, d)
		for nextCheckpoint <= res.Records {
			if err := probe(res.Records); err != nil {
				return nil, err
			}
			nextCheckpoint += checkpointEvery
		}
	}
	wall := time.Since(start).Seconds()

	res.AckP50Ms = Percentile(ackLat, 0.50) * 1000
	res.AckP95Ms = Percentile(ackLat, 0.95) * 1000
	res.AckP99Ms = Percentile(ackLat, 0.99) * 1000
	if wall > 0 {
		res.BatchesPerSec = float64(res.Batches-res.Errors) / wall
		res.RecordsPerSec = float64(res.Records) / wall
	}
	if n := len(res.Checkpoints); n >= 2 && res.Checkpoints[0].EvalP50Ms > 0 {
		res.EvalLatencyRatio = res.Checkpoints[n-1].EvalP50Ms / res.Checkpoints[0].EvalP50Ms
	}
	return res, nil
}
