package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"drnet/internal/slo"
	"drnet/internal/wideevent"
)

// HTTPConfig describes the loadgen leg: POST /evaluate requests against
// a live drevald.
type HTTPConfig struct {
	// URL is the server base URL, e.g. http://127.0.0.1:8080.
	URL string `json:"url"`
	// Requests is the total request count.
	Requests int `json:"requests"`
	// Concurrency is the number of in-flight clients.
	Concurrency int `json:"concurrency"`
	// TraceSize is the records-per-request payload size.
	TraceSize int `json:"traceSize"`
	// Bootstrap is options.bootstrap in the request (0 disables).
	Bootstrap int `json:"bootstrap"`
	// Seed drives both the payload generator and options.seed.
	Seed int64 `json:"seed"`
	// Timeout bounds each request (0 = 30s).
	Timeout time.Duration `json:"-"`
}

// HTTPResult is the loadgen leg's measurement: client-observed
// throughput and latency percentiles plus a status-code census. Both
// OpsPerSec and the percentiles cover successful (200) responses only,
// so fast error answers (e.g. 429s from load shedding) cannot skew the
// latency distribution downward. Any non-200 makes the leg an error
// upstream, but the census is still reported for diagnosis.
type HTTPResult struct {
	Config      HTTPConfig     `json:"config"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	OpsPerSec   float64        `json:"opsPerSec"`
	P50Ms       float64        `json:"p50Ms"`
	P95Ms       float64        `json:"p95Ms"`
	P99Ms       float64        `json:"p99Ms"`
	StatusCount map[string]int `json:"statusCount"`
	// SLO is the run's lifetime compliance against the default serving
	// objectives, computed from the client-observed (status, latency)
	// pairs — the loadgen answers "would this run have met the SLOs",
	// not just "how fast was it". Objectives with no event in scope
	// (staleness, drift) report total 0 / met true.
	SLO []slo.Compliance `json:"slo,omitempty"`
}

// RunHTTP drives cfg.Requests POST /evaluate calls against a live
// drevald with cfg.Concurrency workers and measures client-side
// latency. Transport errors and non-200 statuses count as errors; the
// caller decides whether they fail the run.
func RunHTTP(cfg HTTPConfig) (*HTTPResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("benchkit: http leg needs a server URL")
	}
	if cfg.Requests < 1 || cfg.Concurrency < 1 || cfg.TraceSize < 10 {
		return nil, fmt.Errorf("benchkit: http leg needs requests >= 1, concurrency >= 1, traceSize >= 10")
	}
	if cfg.Concurrency > cfg.Requests {
		cfg.Concurrency = cfg.Requests
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	body, err := json.Marshal(map[string]any{
		"trace":  SyntheticTrace(cfg.TraceSize, cfg.Seed),
		"policy": "best-observed",
		"options": map[string]any{
			"bootstrap": cfg.Bootstrap,
			"seed":      cfg.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("benchkit: marshalling loadgen payload: %w", err)
	}
	url := strings.TrimRight(cfg.URL, "/") + "/evaluate"
	client := &http.Client{Timeout: timeout}

	var (
		mu       sync.Mutex
		lat      []float64
		statuses = map[string]int{}
		errs     int
		// observed mirrors each request as a minimal wide event so the
		// run's SLO compliance comes from the same classification rules
		// the server applies. Transport failures count as 599.
		observed []*wideevent.Event
	)
	work := make(chan struct{}, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		work <- struct{}{}
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				d := time.Since(t0).Seconds()
				mu.Lock()
				if err != nil {
					errs++
					statuses["transport-error"]++
					observed = append(observed, &wideevent.Event{Route: "/evaluate", Status: 599, DurationMs: d * 1000})
				} else {
					statuses[fmt.Sprint(resp.StatusCode)]++
					observed = append(observed, &wideevent.Event{Route: "/evaluate", Status: resp.StatusCode, DurationMs: d * 1000})
					if resp.StatusCode == http.StatusOK {
						lat = append(lat, d)
					} else {
						errs++
					}
				}
				mu.Unlock()
				if resp != nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	res := &HTTPResult{
		Config:      cfg,
		Requests:    cfg.Requests,
		Errors:      errs,
		P50Ms:       Percentile(lat, 0.50) * 1000,
		P95Ms:       Percentile(lat, 0.95) * 1000,
		P99Ms:       Percentile(lat, 0.99) * 1000,
		StatusCount: statuses,
		SLO:         slo.Summarize(slo.DefaultConfig().Objectives, observed),
	}
	if wall > 0 {
		res.OpsPerSec = float64(cfg.Requests-errs) / wall
	}
	return res, nil
}
