package core

import (
	"math"
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

// randomValidTrace builds an arbitrary valid trace plus matching
// policies for property tests.
func randomValidTrace(seed int64) (Trace[float64, int], Policy[float64, int], RewardModel[float64, int]) {
	rng := mathx.NewRNG(seed)
	n := 20 + rng.Intn(200)
	numD := 2 + rng.Intn(4)
	decisions := make([]int, numD)
	for i := range decisions {
		decisions[i] = i
	}
	oldEps := 0.2 + 0.8*rng.Float64()
	old := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: decisions,
		Epsilon:   oldEps,
	}
	newEps := 0.1 + 0.9*rng.Float64()
	np := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return numD - 1 },
		Decisions: decisions,
		Epsilon:   newEps,
	}
	slope := rng.Normal(0, 2)
	trueReward := func(x float64, d int) float64 { return slope * x * float64(d+1) }
	ctxs := make([]float64, n)
	for i := range ctxs {
		ctxs[i] = rng.Float64()
	}
	tr := CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return trueReward(x, d) + rng.Normal(0, 0.5)
	}, rng)
	offset := rng.Normal(0, 0.3) // fixed model bias, deterministic per trace
	model := RewardFunc[float64, int](func(x float64, d int) float64 {
		return trueReward(x, d) + offset
	})
	return tr, np, model
}

// Property: DR is affine-equivariant — transforming every reward and
// the model by r ↦ a·r + b transforms the estimate identically.
func TestDRAffineEquivarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x5a5a)
		a := 0.5 + 2*rng.Float64()
		b := rng.Normal(0, 3)
		base, err := DoublyRobust(tr, np, model, DROptions{})
		if err != nil {
			return false
		}
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		for i := range scaled {
			scaled[i].Reward = a*scaled[i].Reward + b
		}
		scaledModel := RewardFunc[float64, int](func(x float64, d int) float64 {
			return a*model.Predict(x, d) + b
		})
		got, err := DoublyRobust(scaled, np, scaledModel, DROptions{})
		if err != nil {
			return false
		}
		// DM part transforms exactly; the correction term scales by a
		// (the b offsets cancel in the residual), so the whole estimate
		// is a·v + b.
		want := a*base.Value + b
		return math.Abs(got.Value-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: IPS is positively homogeneous in rewards.
func TestIPSHomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x1234)
		a := 0.1 + 3*rng.Float64()
		base, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			return false
		}
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		for i := range scaled {
			scaled[i].Reward *= a
		}
		got, err := IPS(scaled, np, IPSOptions{})
		if err != nil {
			return false
		}
		return math.Abs(got.Value-a*base.Value) < 1e-9*(1+math.Abs(a*base.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: all estimators return finite values with ESS in (0, n] on
// arbitrary valid traces.
func TestEstimatorsFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		n := float64(len(tr))
		check := func(e Estimate, err error) bool {
			if err != nil {
				return false
			}
			if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
				return false
			}
			if math.IsNaN(e.StdErr) || e.StdErr < 0 {
				return false
			}
			return e.ESS >= 0 && e.ESS <= n+1e-6
		}
		dm, err := DirectMethod(tr, np, model)
		if !check(dm, err) {
			return false
		}
		ips, err := IPS(tr, np, IPSOptions{})
		if !check(ips, err) {
			return false
		}
		dr, err := DoublyRobust(tr, np, model, DROptions{})
		if !check(dr, err) {
			return false
		}
		sw, err := SwitchDR(tr, np, model, SwitchOptions{})
		return check(sw, err)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchedRewards always returns a value within the range of
// logged rewards (it is an average of a subset).
func TestMatchedRewardsRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		est, err := MatchedRewards(tr, np)
		if err != nil {
			// No matches is acceptable for a property run.
			return err == ErrNoMatches
		}
		min, max := mathx.MinMax(tr.Rewards())
		return est.Value >= min-1e-12 && est.Value <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SNIPS is invariant to rescaling all propensities by a
// common factor (the scale cancels in the ratio of sums), while plain
// IPS is not.
func TestSNIPSScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x777)
		k := 1.2 + rng.Float64() // scale propensities UP (stay <= 1 after clamp guard)
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		ok := true
		for i := range scaled {
			p := scaled[i].Propensity / k // scaling down keeps p in (0,1]
			if p <= 0 {
				ok = false
				break
			}
			scaled[i].Propensity = p
		}
		if !ok {
			return true
		}
		a, err := IPS(tr, np, IPSOptions{SelfNormalize: true})
		if err != nil {
			return false
		}
		b, err := IPS(scaled, np, IPSOptions{SelfNormalize: true})
		if err != nil {
			return false
		}
		return math.Abs(a.Value-b.Value) < 1e-9*(1+math.Abs(a.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: StreamingDR agrees with batch DR on arbitrary valid traces.
func TestStreamingMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		s := NewStreamingDR(np, model)
		for _, rec := range tr {
			if err := s.Offer(rec); err != nil {
				return false
			}
		}
		got, err := s.Estimate()
		if err != nil {
			return false
		}
		want, err := DoublyRobust(tr, np, model, DROptions{})
		if err != nil {
			return false
		}
		return math.Abs(got.Value-want.Value) < 1e-9*(1+math.Abs(want.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
