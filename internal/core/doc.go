// Package core implements trace-driven (off-policy) evaluation of
// networking policies, the primary contribution of "Biases in Data-Driven
// Networking, and What to Do About Them" (HotNets 2017).
//
// The central objects are:
//
//   - Record / Trace: logged tuples (context, decision, reward,
//     propensity) collected while an old policy µ_old was running.
//   - Policy: a stochastic mapping from client contexts to decisions.
//   - RewardModel: a model r̂(c, d) predicting the reward of any
//     decision for any context (the ingredient of the Direct Method).
//   - Estimators: DirectMethod (DM), IPS (inverse propensity scoring,
//     with optional clipping and self-normalization), and DoublyRobust
//     (DR), which combines DM and IPS and is accurate whenever at least
//     one of the two ingredients is accurate ("second-order bias").
//   - ReplayDR: the paper's §4.2 extension of DR to non-stationary
//     (history-dependent) target policies via rejection-sampling replay.
//
// Estimators are generic over the context type C and the (comparable)
// decision type D, so the same machinery evaluates video bitrate
// policies, CDN configurations, relay selections, and server choices.
//
// All estimators return an Estimate carrying the point value, a plug-in
// standard error, and importance-weight diagnostics; bootstrap
// confidence intervals are available via Bootstrap.
package core
