package core

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestDeterministicPolicy(t *testing.T) {
	p := DeterministicPolicy[int, string]{Choose: func(c int) string {
		if c > 0 {
			return "up"
		}
		return "down"
	}}
	dist := p.Distribution(5)
	if len(dist) != 1 || dist[0].Decision != "up" || dist[0].Prob != 1 {
		t.Fatalf("bad distribution %v", dist)
	}
	if Prob[int, string](p, -1, "down") != 1 {
		t.Fatal("Prob should be 1 on the chosen decision")
	}
	if Prob[int, string](p, -1, "up") != 0 {
		t.Fatal("Prob should be 0 off-support")
	}
}

func TestUniformPolicy(t *testing.T) {
	p := UniformPolicy[int, int]{Decisions: []int{1, 2, 3, 4}}
	dist := p.Distribution(0)
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	for _, w := range dist {
		if w.Prob != 0.25 {
			t.Fatalf("prob = %g, want 0.25", w.Prob)
		}
	}
}

func TestEpsilonGreedyPolicy(t *testing.T) {
	p := EpsilonGreedyPolicy[int, int]{
		Base:      func(int) int { return 2 },
		Decisions: []int{1, 2, 3},
		Epsilon:   0.3,
	}
	dist := p.Distribution(0)
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	if got := Prob[int, int](p, 0, 2); !almostEqual(got, 0.7+0.1, 1e-12) {
		t.Fatalf("greedy prob = %g, want 0.8", got)
	}
	if got := Prob[int, int](p, 0, 1); !almostEqual(got, 0.1, 1e-12) {
		t.Fatalf("explore prob = %g, want 0.1", got)
	}
}

func TestEpsilonGreedyBaseOutsideDecisions(t *testing.T) {
	p := EpsilonGreedyPolicy[int, int]{
		Base:      func(int) int { return 99 },
		Decisions: []int{1, 2},
		Epsilon:   0.2,
	}
	dist := p.Distribution(0)
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	if got := Prob[int, int](p, 0, 99); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("outside base prob = %g, want 0.8", got)
	}
}

func TestMixturePolicy(t *testing.T) {
	a := DeterministicPolicy[int, int]{Choose: func(int) int { return 1 }}
	b := DeterministicPolicy[int, int]{Choose: func(int) int { return 2 }}
	m := MixturePolicy[int, int]{A: a, B: b, Alpha: 0.3}
	dist := m.Distribution(0)
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	if got := Prob[int, int](m, 0, 1); !almostEqual(got, 0.3, 1e-12) {
		t.Fatalf("P(1) = %g, want 0.3", got)
	}
	if got := Prob[int, int](m, 0, 2); !almostEqual(got, 0.7, 1e-12) {
		t.Fatalf("P(2) = %g, want 0.7", got)
	}
}

func TestMixturePolicyOverlappingSupport(t *testing.T) {
	u := UniformPolicy[int, int]{Decisions: []int{1, 2}}
	m := MixturePolicy[int, int]{A: u, B: u, Alpha: 0.5}
	dist := m.Distribution(0)
	if len(dist) != 2 {
		t.Fatalf("overlapping support should merge, got %v", dist)
	}
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRespectsDistribution(t *testing.T) {
	rng := mathx.NewRNG(13)
	p := EpsilonGreedyPolicy[int, int]{
		Base:      func(int) int { return 0 },
		Decisions: []int{0, 1},
		Epsilon:   0.5,
	}
	count := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if Sample[int, int](p, 0, rng) == 0 {
			count++
		}
	}
	if got := float64(count) / n; math.Abs(got-0.75) > 0.02 {
		t.Fatalf("sampled frequency %g, want ~0.75", got)
	}
}

func TestValidateDistribution(t *testing.T) {
	if err := ValidateDistribution([]Weighted[int]{}); err == nil {
		t.Fatal("empty distribution should fail")
	}
	if err := ValidateDistribution([]Weighted[int]{{0, -0.1}, {1, 1.1}}); err == nil {
		t.Fatal("negative probability should fail")
	}
	if err := ValidateDistribution([]Weighted[int]{{0, 0.2}}); err == nil {
		t.Fatal("non-normalized distribution should fail")
	}
	if err := ValidateDistribution([]Weighted[int]{{0, 0.5}, {1, 0.5}}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncPolicy(t *testing.T) {
	f := FuncPolicy[int, int](func(c int) []Weighted[int] {
		return []Weighted[int]{{Decision: c * 2, Prob: 1}}
	})
	if got := f.Distribution(3)[0].Decision; got != 6 {
		t.Fatalf("got %d, want 6", got)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
