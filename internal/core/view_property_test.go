package core

import (
	"math"
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

// Property: on ANY random valid trace, every view estimator agrees
// bit-for-bit with its slice counterpart. This is the equivalence
// contract as a property rather than a fixed fixture.
func TestViewSliceAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		type pair struct {
			slice func() (Estimate, error)
			view  func() (Estimate, error)
		}
		pairs := []pair{
			{func() (Estimate, error) { return DirectMethod(tr, np, model) },
				func() (Estimate, error) { return DirectMethodView(v, np, model) }},
			{func() (Estimate, error) { return IPS(tr, np, IPSOptions{}) },
				func() (Estimate, error) { return IPSView(v, np, IPSOptions{}) }},
			{func() (Estimate, error) { return IPS(tr, np, IPSOptions{Clip: 2, SelfNormalize: true}) },
				func() (Estimate, error) { return IPSView(v, np, IPSOptions{Clip: 2, SelfNormalize: true}) }},
			{func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{}) },
				func() (Estimate, error) { return DoublyRobustView(v, np, model, DROptions{}) }},
			{func() (Estimate, error) { return SwitchDR(tr, np, model, SwitchOptions{}) },
				func() (Estimate, error) { return SwitchDRView(v, np, model, SwitchOptions{}) }},
			{func() (Estimate, error) { return MatchedRewards(tr, np) },
				func() (Estimate, error) { return MatchedRewardsView(v, np) }},
		}
		for _, p := range pairs {
			want, errS := p.slice()
			got, errV := p.view()
			if (errS == nil) != (errV == nil) {
				return false
			}
			if errS != nil {
				if errS.Error() != errV.Error() {
					return false
				}
				continue
			}
			if got != want {
				return false
			}
		}
		wantD, errS := Diagnose(tr, np)
		gotD, errV := DiagnoseView(v, np)
		if (errS == nil) != (errV == nil) || (errS == nil && gotD != wantD) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: DR over the view is affine-equivariant, as the slice DR is
// (transforming rewards and model by r ↦ a·r + b transforms the
// estimate identically).
func TestViewDRAffineEquivarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x5a5a)
		a := 0.5 + 2*rng.Float64()
		b := rng.Normal(0, 3)
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		base, err := DoublyRobustView(v, np, model, DROptions{})
		if err != nil {
			return false
		}
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		for i := range scaled {
			scaled[i].Reward = a*scaled[i].Reward + b
		}
		sv, err := NewTraceView(scaled)
		if err != nil {
			return false
		}
		scaledModel := RewardFunc[float64, int](func(x float64, d int) float64 {
			return a*model.Predict(x, d) + b
		})
		got, err := DoublyRobustView(sv, np, scaledModel, DROptions{})
		if err != nil {
			return false
		}
		want := a*base.Value + b
		return math.Abs(got.Value-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: view IPS is positively homogeneous in rewards.
func TestViewIPSHomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x1717)
		a := 0.25 + 3*rng.Float64()
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		base, err := IPSView(v, np, IPSOptions{})
		if err != nil {
			return false
		}
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		for i := range scaled {
			scaled[i].Reward = a * scaled[i].Reward
		}
		sv, err := NewTraceView(scaled)
		if err != nil {
			return false
		}
		got, err := IPSView(sv, np, IPSOptions{})
		if err != nil {
			return false
		}
		want := a * base.Value
		return math.Abs(got.Value-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: view SNIPS is invariant to uniform propensity scaling
// (scaling every propensity by the same factor cancels in the
// self-normalized ratio).
func TestViewSNIPSScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		rng := mathx.NewRNG(seed ^ 0x2b2b)
		s := 0.3 + 0.7*rng.Float64() // keep scaled propensities in (0,1]
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		base, err := IPSView(v, np, IPSOptions{SelfNormalize: true})
		if err != nil {
			return false
		}
		scaled := make(Trace[float64, int], len(tr))
		copy(scaled, tr)
		for i := range scaled {
			scaled[i].Propensity = s * scaled[i].Propensity
		}
		sv, err := NewTraceView(scaled)
		if err != nil {
			return false
		}
		got, err := IPSView(sv, np, IPSOptions{SelfNormalize: true})
		if err != nil {
			return false
		}
		return math.Abs(got.Value-base.Value) < 1e-9*(1+math.Abs(base.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every view estimate on a valid random trace is finite with
// 0 < ESS ≤ N, and MatchedRewardsView stays within the observed reward
// range when it succeeds.
func TestViewEstimatesFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		checks := []func() (Estimate, error){
			func() (Estimate, error) { return DirectMethodView(v, np, model) },
			func() (Estimate, error) { return IPSView(v, np, IPSOptions{}) },
			func() (Estimate, error) { return DoublyRobustView(v, np, model, DROptions{}) },
			func() (Estimate, error) { return SwitchDRView(v, np, model, SwitchOptions{}) },
		}
		for _, run := range checks {
			e, err := run()
			if err != nil {
				return false
			}
			if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
				return false
			}
			if !(e.ESS > 0) || e.ESS > float64(e.N)+1e-9 {
				return false
			}
		}
		if e, err := MatchedRewardsView(v, np); err == nil {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, rec := range tr {
				lo = math.Min(lo, rec.Reward)
				hi = math.Max(hi, rec.Reward)
			}
			if e.Value < lo-1e-12 || e.Value > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: interning round-trips — materializing the view reproduces
// the trace record-for-record, and dictionary sizes never exceed the
// trace length.
func TestViewMaterializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, _, _ := randomValidTrace(seed)
		v, err := NewTraceView(tr)
		if err != nil {
			return false
		}
		if v.Len() != len(tr) || v.NumContexts() > len(tr) || v.NumDecisions() > len(tr) {
			return false
		}
		back := v.Materialize()
		if len(back) != len(tr) {
			return false
		}
		for i := range tr {
			if back[i] != tr[i] {
				return false
			}
		}
		if v.MeanReward() != tr.MeanReward() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
