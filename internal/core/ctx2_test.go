package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"drnet/internal/mathx"
)

func cloneTrace(t Trace[float64, int]) Trace[float64, int] {
	return append(Trace[float64, int](nil), t...)
}

// TestSequentialCtxVariantsMatchPlain: the ctx-aware forms of the
// sequential estimators and fitters must be bit-identical to their
// plain counterparts under a live context (same rng stream where one is
// consumed).
func TestSequentialCtxVariantsMatchPlain(t *testing.T) {
	tr, pol := ctxTestTrace(500)
	ctx := context.Background()
	key := func(c float64, d int) string {
		return fmt.Sprintf("%g|%d", c, d)
	}

	m1 := FitTable(tr, key)
	m2, err := FitTableCtx(ctx, tr, key)
	if err != nil {
		t.Fatalf("FitTableCtx: %v", err)
	}
	if !reflect.DeepEqual(m1.Values, m2.Values) || m1.Default != m2.Default {
		t.Fatal("FitTableCtx diverged from FitTable")
	}

	mr1, err1 := MatchedRewards(tr, pol)
	mr2, err2 := MatchedRewardsCtx(ctx, tr, pol)
	if err1 != nil || err2 != nil || mr1 != mr2 {
		t.Fatalf("MatchedRewardsCtx diverged: %+v/%v vs %+v/%v", mr1, err1, mr2, err2)
	}

	sw1, err1 := SwitchDR(tr, pol, m1, SwitchOptions{})
	sw2, err2 := SwitchDRCtx(ctx, tr, pol, m1, SwitchOptions{})
	if err1 != nil || err2 != nil || sw1 != sw2 {
		t.Fatalf("SwitchDRCtx diverged: %+v/%v vs %+v/%v", sw1, err1, sw2, err2)
	}

	est := func(t Trace[float64, int]) (Estimate, error) {
		return IPS(t, pol, IPSOptions{Clip: 10})
	}
	iv1, err1 := Bootstrap(tr, est, mathx.NewRNG(9), 60, 0.9)
	iv2, err2 := BootstrapCtx(ctx, tr, est, mathx.NewRNG(9), 60, 0.9)
	if err1 != nil || err2 != nil || iv1 != iv2 {
		t.Fatalf("BootstrapCtx diverged: %+v/%v vs %+v/%v", iv1, err1, iv2, err2)
	}

	rp1, err1 := ReplayDR(tr, Stationary[float64, int]{Policy: pol}, m1, mathx.NewRNG(11))
	rp2, err2 := ReplayDRCtx(ctx, tr, Stationary[float64, int]{Policy: pol}, m1, mathx.NewRNG(11))
	if err1 != nil || err2 != nil || rp1 != rp2 {
		t.Fatalf("ReplayDRCtx diverged: %+v/%v vs %+v/%v", rp1, err1, rp2, err2)
	}

	oldPol := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	a1, a2 := cloneTrace(tr), cloneTrace(tr)
	if err := AttachPropensities(a1, oldPol); err != nil {
		t.Fatalf("AttachPropensities: %v", err)
	}
	if err := AttachPropensitiesCtx(ctx, a2, oldPol); err != nil {
		t.Fatalf("AttachPropensitiesCtx: %v", err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("AttachPropensitiesCtx diverged from AttachPropensities")
	}

	ckey := func(c float64) string { return fmt.Sprintf("%g", c) }
	e1, e2 := cloneTrace(tr), cloneTrace(tr)
	if err := EstimatePropensities(e1, ckey, 5, 1e-4); err != nil {
		t.Fatalf("EstimatePropensities: %v", err)
	}
	if err := EstimatePropensitiesCtx(ctx, e2, ckey, 5, 1e-4); err != nil {
		t.Fatalf("EstimatePropensitiesCtx: %v", err)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("EstimatePropensitiesCtx diverged from EstimatePropensities")
	}

	feat := func(c float64) []float64 { return []float64{c} }
	f1, f2 := cloneTrace(tr), cloneTrace(tr)
	pm1, err1 := FitPropensityModel(f1, feat, 0.1, 1e-3)
	pm2, err2 := FitPropensityModelCtx(ctx, f2, feat, 0.1, 1e-3)
	if err1 != nil || err2 != nil {
		t.Fatalf("FitPropensityModel: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(pm1, pm2) || !reflect.DeepEqual(f1, f2) {
		t.Fatal("FitPropensityModelCtx diverged from FitPropensityModel")
	}
}

// TestSequentialCtxVariantsCancelled: every sequential ctx-aware entry
// point must fail fast with context.Canceled — the stride check fires
// on the first record, so a small trace suffices.
func TestSequentialCtxVariantsCancelled(t *testing.T) {
	tr, pol := ctxTestTrace(64)
	model := FitTable(tr, func(c float64, d int) string {
		return string(rune('0' + d))
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := FitTableCtx(ctx, tr, func(c float64, d int) string { return "k" }); !errors.Is(err, context.Canceled) {
		t.Fatalf("FitTableCtx: %v", err)
	}
	if _, err := MatchedRewardsCtx(ctx, tr, pol); !errors.Is(err, context.Canceled) {
		t.Fatalf("MatchedRewardsCtx: %v", err)
	}
	if _, err := SwitchDRCtx(ctx, tr, pol, model, SwitchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SwitchDRCtx: %v", err)
	}
	est := func(t Trace[float64, int]) (Estimate, error) { return IPS(t, pol, IPSOptions{}) }
	if _, err := BootstrapCtx(ctx, tr, est, mathx.NewRNG(9), 20, 0.9); !errors.Is(err, context.Canceled) {
		t.Fatalf("BootstrapCtx: %v", err)
	}
	if _, err := ReplayDRCtx(ctx, tr, Stationary[float64, int]{Policy: pol}, model, mathx.NewRNG(11)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReplayDRCtx: %v", err)
	}
	oldPol := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	if err := AttachPropensitiesCtx(ctx, cloneTrace(tr), oldPol); !errors.Is(err, context.Canceled) {
		t.Fatalf("AttachPropensitiesCtx: %v", err)
	}
	if err := EstimatePropensitiesCtx(ctx, cloneTrace(tr), func(c float64) string { return "g" }, 1, 1e-4); !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimatePropensitiesCtx: %v", err)
	}
	if _, err := FitPropensityModelCtx(ctx, cloneTrace(tr), func(c float64) []float64 { return []float64{c} }, 0.1, 1e-3); !errors.Is(err, context.Canceled) {
		t.Fatalf("FitPropensityModelCtx: %v", err)
	}
}
