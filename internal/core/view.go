package core

import (
	"context"
	"fmt"
	"math"
)

// TraceView is a struct-of-arrays projection of a Trace: the float
// columns (rewards, propensities) are contiguous, and the generic
// context/decision values are interned into small-integer codes with a
// dictionary back to the original values. It is built once from a
// Trace and then shared, read-only, by every estimator evaluation —
// the *View estimator variants compute from the columns with pooled
// scratch buffers instead of walking []Record, and the bootstrap
// resamples it by index instead of copying records.
//
// Invariants established at construction and relied on by the hot
// path:
//   - every record passed Trace.Validate (propensity in (0,1], finite
//     reward), so the estimators skip re-validation;
//   - contexts/decisions dictionaries are in first-occurrence order,
//     so per-unique-context work observes values in the same order a
//     sequential record scan would;
//   - len(contexts)·len(decisions) tables fit in memory (the estimators
//     build per-(context,decision) tables; interning is designed for
//     traces whose context/decision spaces are much smaller than n,
//     which is the regime of every workload in this repository).
//
// Equivalence contract: the *View estimators are bit-identical to
// their Trace counterparts provided the policy and reward model are
// pure functions that do not distinguish between contexts the view
// interned together (for NewTraceView: contexts that compare equal;
// for NewTraceViewKeyed: contexts with equal keys). The equivalence
// suite in view_equivalence_test.go locks this down for every
// estimator at worker counts 1, 2 and 8.
type TraceView[C any, D comparable] struct {
	rewards      []float64
	propensities []float64
	ctxCodes     []int32
	decCodes     []int32

	// contexts and decisions are the interning dictionaries, in
	// first-occurrence order; ctxFirst[u] is the record index at which
	// context code u first appeared (used to report validation errors
	// at the same record index as a sequential scan).
	contexts  []C
	ctxFirst  []int32
	decisions []D
	decIndex  map[D]int32
	// lookup resolves an arbitrary context value to its code (closure
	// over the constructor's interning map, so the comparable and
	// keyed constructors share one struct layout).
	lookup func(C) (int32, bool)
}

// NewTraceView builds a columnar view of t, interning contexts by
// value (C must be comparable). It validates exactly like
// Trace.Validate and fails with the same error on the same record.
func NewTraceView[C comparable, D comparable](t Trace[C, D]) (*TraceView[C, D], error) {
	return NewTraceViewCtx(context.Background(), t)
}

// NewTraceViewCtx is NewTraceView with cooperative cancellation: ctx
// is checked once per chunk of records during the build pass.
func NewTraceViewCtx[C comparable, D comparable](ctx context.Context, t Trace[C, D]) (*TraceView[C, D], error) {
	index := make(map[C]int32)
	intern := func(c C) (int32, bool) {
		if u, ok := index[c]; ok {
			return u, false
		}
		u := int32(len(index))
		index[c] = u
		return u, true
	}
	lookup := func(c C) (int32, bool) {
		u, ok := index[c]
		return u, ok
	}
	return buildView(ctx, t, intern, lookup)
}

// NewTraceViewKeyed builds a columnar view of t for context types that
// are not comparable (feature vectors, slices): contexts are interned
// by the caller-supplied key. The key must be injective up to
// behavioral equivalence — contexts mapping to the same key must be
// indistinguishable to every policy and reward model evaluated against
// the view, or the *View estimators lose their bit-equivalence with
// the Trace path.
func NewTraceViewKeyed[C any, D comparable](t Trace[C, D], key func(C) string) (*TraceView[C, D], error) {
	return NewTraceViewKeyedCtx(context.Background(), t, key)
}

// NewTraceViewKeyedCtx is NewTraceViewKeyed with cooperative
// cancellation, mirroring NewTraceViewCtx.
func NewTraceViewKeyedCtx[C any, D comparable](ctx context.Context, t Trace[C, D], key func(C) string) (*TraceView[C, D], error) {
	index := make(map[string]int32)
	intern := func(c C) (int32, bool) {
		k := key(c)
		if u, ok := index[k]; ok {
			return u, false
		}
		u := int32(len(index))
		index[k] = u
		return u, true
	}
	lookup := func(c C) (int32, bool) {
		u, ok := index[key(c)]
		return u, ok
	}
	return buildView(ctx, t, intern, lookup)
}

// buildView is the shared constructor body: one pass that validates
// (with Trace.Validate's exact semantics and error text), interns, and
// fills the columns.
func buildView[C any, D comparable](ctx context.Context, t Trace[C, D], intern func(C) (int32, bool), lookup func(C) (int32, bool)) (*TraceView[C, D], error) {
	if int64(len(t)) > math.MaxInt32 {
		return nil, fmt.Errorf("core: trace length %d exceeds TraceView capacity", len(t))
	}
	v := &TraceView[C, D]{
		rewards:      make([]float64, len(t)),
		propensities: make([]float64, len(t)),
		ctxCodes:     make([]int32, len(t)),
		decCodes:     make([]int32, len(t)),
		decIndex:     make(map[D]int32),
		lookup:       lookup,
	}
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// The negated comparison also rejects NaN propensities, exactly
		// as in Trace.Validate.
		if !(rec.Propensity > 0) || rec.Propensity > 1 {
			return nil, fmt.Errorf("core: record %d has propensity %g, want (0,1]", i, rec.Propensity)
		}
		if math.IsNaN(rec.Reward) {
			return nil, fmt.Errorf("core: record %d has NaN reward", i)
		}
		if math.IsInf(rec.Reward, 0) {
			return nil, fmt.Errorf("core: record %d has infinite reward", i)
		}
		u, isNew := intern(rec.Context)
		if isNew {
			v.contexts = append(v.contexts, rec.Context)
			v.ctxFirst = append(v.ctxFirst, int32(i))
		}
		k, ok := v.decIndex[rec.Decision]
		if !ok {
			k = int32(len(v.decisions))
			v.decisions = append(v.decisions, rec.Decision)
			v.decIndex[rec.Decision] = k
		}
		v.ctxCodes[i] = u
		v.decCodes[i] = k
		v.rewards[i] = rec.Reward
		v.propensities[i] = rec.Propensity
	}
	return v, nil
}

// Len returns the number of records in the view.
func (v *TraceView[C, D]) Len() int { return len(v.rewards) }

// NumContexts returns the number of distinct interned contexts.
func (v *TraceView[C, D]) NumContexts() int { return len(v.contexts) }

// NumDecisions returns the number of distinct logged decisions.
func (v *TraceView[C, D]) NumDecisions() int { return len(v.decisions) }

// At reconstructs record i. The context is the dictionary
// representative (the first record that interned to the same code).
func (v *TraceView[C, D]) At(i int) Record[C, D] {
	return Record[C, D]{
		Context:    v.contexts[v.ctxCodes[i]],
		Decision:   v.decisions[v.decCodes[i]],
		Reward:     v.rewards[i],
		Propensity: v.propensities[i],
	}
}

// RewardAt returns record i's reward without reconstructing the record.
func (v *TraceView[C, D]) RewardAt(i int) float64 { return v.rewards[i] }

// PropensityAt returns record i's logged propensity.
func (v *TraceView[C, D]) PropensityAt(i int) float64 { return v.propensities[i] }

// ContextCode returns record i's interned context code, in
// [0, NumContexts). Codes are assigned in first-occurrence order.
func (v *TraceView[C, D]) ContextCode(i int) int { return int(v.ctxCodes[i]) }

// DecisionCode returns record i's interned decision code, in
// [0, NumDecisions).
func (v *TraceView[C, D]) DecisionCode(i int) int { return int(v.decCodes[i]) }

// ContextValue returns the dictionary representative of context code u
// (the context of the first record that interned to u).
func (v *TraceView[C, D]) ContextValue(u int) C { return v.contexts[u] }

// DecisionValue returns the decision for dictionary code k.
func (v *TraceView[C, D]) DecisionValue(k int) D { return v.decisions[k] }

// DecisionIndex resolves a decision value to its dictionary code,
// reporting false for decisions never logged in the trace.
func (v *TraceView[C, D]) DecisionIndex(d D) (int, bool) {
	k, ok := v.decIndex[d]
	return int(k), ok
}

// Materialize reconstructs the full trace from the columns and
// dictionaries (the interning round-trip the fuzz target checks).
//
//lint:allow ctxdiscipline test/debug round-trip helper, never on the request path
func (v *TraceView[C, D]) Materialize() Trace[C, D] {
	out := make(Trace[C, D], v.Len())
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// Rewards returns a copy of the reward column.
func (v *TraceView[C, D]) Rewards() []float64 {
	out := make([]float64, len(v.rewards))
	copy(out, v.rewards)
	return out
}

// MeanReward returns the average logged reward, bit-identical to
// Trace.MeanReward (same in-order summation).
func (v *TraceView[C, D]) MeanReward() float64 {
	if len(v.rewards) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range v.rewards {
		s += r
	}
	return s / float64(len(v.rewards))
}

// UniqueContexts returns a copy of the context dictionary in
// first-occurrence order.
func (v *TraceView[C, D]) UniqueContexts() []C {
	out := make([]C, len(v.contexts))
	copy(out, v.contexts)
	return out
}

// UniqueDecisions returns a copy of the decision dictionary in
// first-occurrence order.
func (v *TraceView[C, D]) UniqueDecisions() []D {
	out := make([]D, len(v.decisions))
	copy(out, v.decisions)
	return out
}
