package core

import (
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestAttachPropensities(t *testing.T) {
	old := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	tr := Trace[float64, int]{
		{Context: 0.5, Decision: 0},
		{Context: 0.5, Decision: 1},
	}
	if err := AttachPropensities(tr, old); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr[0].Propensity, 0.8, 1e-12) {
		t.Fatalf("greedy propensity %g, want 0.8", tr[0].Propensity)
	}
	if !almostEqual(tr[1].Propensity, 0.1, 1e-12) {
		t.Fatalf("explore propensity %g, want 0.1", tr[1].Propensity)
	}
	// Decision impossible under the old policy.
	bad := Trace[float64, int]{{Context: 0.5, Decision: 9}}
	if err := AttachPropensities(bad, old); err == nil {
		t.Fatal("expected error for zero-probability logged decision")
	}
}

func TestEstimatePropensitiesRecoversTruth(t *testing.T) {
	// Log from a known stochastic policy, estimate propensities from the
	// trace alone, and compare with truth.
	rng := mathx.NewRNG(21)
	old := EpsilonGreedyPolicy[int, int]{
		Base:      func(c int) int { return c % 3 }, // depends on context group
		Decisions: []int{0, 1, 2},
		Epsilon:   0.4,
	}
	var ctxs []int
	for i := 0; i < 9000; i++ {
		ctxs = append(ctxs, rng.Intn(3))
	}
	tr := CollectTrace(ctxs, old, func(int, int) float64 { return 0 }, rng)
	// Blank out the propensities to simulate an unknown logging policy.
	truth := make([]float64, len(tr))
	for i := range tr {
		truth[i] = tr[i].Propensity
		tr[i].Propensity = 0
	}
	key := func(c int) string { return string(rune('0' + c)) }
	if err := EstimatePropensities(tr, key, 10, 1e-4); err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range tr {
		if e := math.Abs(tr[i].Propensity - truth[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.05 {
		t.Fatalf("estimated propensities off by up to %g", maxErr)
	}
}

func TestEstimatePropensitiesSmallGroupFallback(t *testing.T) {
	tr := Trace[int, int]{
		{Context: 1, Decision: 0},
		{Context: 2, Decision: 0},
		{Context: 2, Decision: 0},
		{Context: 2, Decision: 1},
	}
	// Context 1 appears once: with minCount 2 it must use the marginal
	// distribution (3/4 for decision 0).
	if err := EstimatePropensities(tr, func(c int) string { return string(rune('0' + c)) }, 2, 1e-4); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tr[0].Propensity, 0.75, 1e-12) {
		t.Fatalf("fallback propensity %g, want 0.75", tr[0].Propensity)
	}
}

func TestEstimatePropensitiesFloorAndEmpty(t *testing.T) {
	var empty Trace[int, int]
	if err := EstimatePropensities(empty, func(int) string { return "" }, 1, 0); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	tr := Trace[int, int]{{Context: 0, Decision: 0}}
	if err := EstimatePropensities(tr, func(int) string { return "g" }, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if tr[0].Propensity != 1 {
		t.Fatalf("propensity %g, want capped at 1", tr[0].Propensity)
	}
}
