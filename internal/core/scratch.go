package core

import "sync"

// Scratch pools for the columnar estimator hot path. The TraceView
// estimators fill per-record working arrays (contributions, weights,
// residuals) and small per-context tables on every evaluation; pooling
// them keeps the steady state allocation-free (see
// TestEstimatorSteadyStateAllocs) without threading arenas through
// every call site.
//
// Contract: getFloats/getInt32s/getInts return slices of the requested
// length with ARBITRARY contents — callers must write every element
// they read. Callers return buffers with the matching put* once no
// result aliases them; pooled buffers must never escape into returned
// values.
var (
	floatScratch = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}
	int32Scratch = sync.Pool{New: func() any { s := make([]int32, 0, 1024); return &s }}
	intScratch   = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}
)

// getFloats returns a pooled []float64 of length n (contents arbitrary).
func getFloats(n int) *[]float64 {
	p := floatScratch.Get().(*[]float64)
	if cap(*p) < n {
		//lint:allow hotalloc pool miss; capacity is retained and reused across calls
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putFloats(p *[]float64) { floatScratch.Put(p) }

// getInt32s returns a pooled []int32 of length n (contents arbitrary).
func getInt32s(n int) *[]int32 {
	p := int32Scratch.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putInt32s(p *[]int32) { int32Scratch.Put(p) }

// getInts returns a pooled []int of length n (contents arbitrary).
func getInts(n int) *[]int {
	p := intScratch.Get().(*[]int)
	if cap(*p) < n {
		//lint:allow hotalloc pool miss; capacity is retained and reused across calls
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return p
}

func putInts(p *[]int) { intScratch.Put(p) }
