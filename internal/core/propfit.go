package core

import (
	"context"
	"errors"
	"fmt"

	"drnet/internal/mathx"
)

// FitPropensityModel estimates µ_old(d|c) from the trace with
// multinomial logistic regression (one-vs-rest, normalized), for traces
// whose contexts carry numeric features. It covers the case the paper
// flags — "in practice, it may be necessary to estimate this
// probability from the trace" — when contexts are too high-dimensional
// for the grouped empirical estimator (EstimatePropensities).
//
// featurize maps a context to its numeric features; floor bounds the
// estimated propensities away from zero so importance weights stay
// finite. The fitted propensities are written into the trace records,
// and the per-decision models are returned so callers can inspect or
// reuse them.
func FitPropensityModel[C any, D comparable](t Trace[C, D], featurize func(C) []float64, lambda, floor float64) (map[D]*mathx.LogisticModel, error) {
	return FitPropensityModelCtx(context.Background(), t, featurize, lambda, floor)
}

// FitPropensityModelCtx is FitPropensityModel with cooperative
// cancellation: ctx is checked before each per-decision logistic fit
// (the expensive unit) and once per chunk of records in the scan and
// normalization passes. A cancelled ctx returns ctx's error; the trace
// may then be partially normalized.
func FitPropensityModelCtx[C any, D comparable](ctx context.Context, t Trace[C, D], featurize func(C) []float64, lambda, floor float64) (map[D]*mathx.LogisticModel, error) {
	if len(t) == 0 {
		return nil, ErrEmptyTrace
	}
	if floor <= 0 {
		floor = 1e-3
	}
	if lambda < 0 {
		return nil, errors.New("core: negative regularization")
	}
	// Enumerate decisions.
	decisions := make([]D, 0, 8)
	seen := make(map[D]bool)
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !seen[rec.Decision] {
			seen[rec.Decision] = true
			decisions = append(decisions, rec.Decision)
		}
	}
	if len(decisions) < 2 {
		return nil, errors.New("core: trace contains a single decision; propensities are trivially 1")
	}
	// Build the design matrix once.
	x := make([][]float64, len(t))
	for i, rec := range t {
		x[i] = featurize(rec.Context)
	}
	// One-vs-rest logistic models.
	models := make(map[D]*mathx.LogisticModel, len(decisions))
	for _, d := range decisions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		y := make([]float64, len(t))
		for i, rec := range t {
			if rec.Decision == d {
				y[i] = 1
			}
		}
		m, err := mathx.FitLogistic(x, y, mathx.LogisticOptions{Lambda: lambda})
		if err != nil {
			return nil, fmt.Errorf("core: fitting propensity model for decision %v: %w", d, err)
		}
		models[d] = m
	}
	// Normalize the one-vs-rest scores into propensities per record.
	for i := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total := 0.0
		scores := make(map[D]float64, len(decisions))
		for _, d := range decisions {
			s := models[d].Predict(x[i])
			scores[d] = s
			total += s
		}
		p := scores[t[i].Decision]
		if total > 0 {
			p /= total
		}
		t[i].Propensity = mathx.Clamp(p, floor, 1)
	}
	return models, nil
}
