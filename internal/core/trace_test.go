package core

import (
	"testing"
)

func sampleTrace() Trace[string, int] {
	return Trace[string, int]{
		{Context: "a", Decision: 1, Reward: 2, Propensity: 0.5},
		{Context: "b", Decision: 2, Reward: 4, Propensity: 0.5},
		{Context: "c", Decision: 1, Reward: 6, Propensity: 1},
	}
}

func TestTraceRewardsAndMean(t *testing.T) {
	tr := sampleTrace()
	rs := tr.Rewards()
	if len(rs) != 3 || rs[0] != 2 || rs[2] != 6 {
		t.Fatalf("Rewards = %v", rs)
	}
	if got := tr.MeanReward(); got != 4 {
		t.Fatalf("MeanReward = %g, want 4", got)
	}
	var empty Trace[string, int]
	if empty.MeanReward() != 0 {
		t.Fatal("empty trace mean should be 0")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr[1].Propensity = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("expected propensity error")
	}
}

func TestTraceSplit(t *testing.T) {
	tr := make(Trace[string, int], 10)
	for i := range tr {
		tr[i] = Record[string, int]{Propensity: 1}
	}
	fit, eval, err := tr.Split(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit) != 3 || len(eval) != 7 {
		t.Fatalf("split sizes %d/%d", len(fit), len(eval))
	}
	if _, _, err := tr.Split(0); err == nil {
		t.Fatal("frac 0 should fail")
	}
	if _, _, err := tr.Split(1); err == nil {
		t.Fatal("frac 1 should fail")
	}
	small := tr[:1]
	if _, _, err := small.Split(0.1); err == nil {
		t.Fatal("degenerate split should fail")
	}
}

func TestDecisionCounts(t *testing.T) {
	counts := sampleTrace().DecisionCounts()
	if counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("DecisionCounts = %v", counts)
	}
}

func TestFitTable(t *testing.T) {
	tr := Trace[string, int]{
		{Context: "x", Decision: 1, Reward: 2, Propensity: 1},
		{Context: "x", Decision: 1, Reward: 4, Propensity: 1},
		{Context: "y", Decision: 2, Reward: 10, Propensity: 1},
	}
	m := FitTable(tr, func(c string, d int) string { return c })
	if got := m.Predict("x", 1); got != 3 {
		t.Fatalf("Predict(x) = %g, want 3", got)
	}
	if got := m.Predict("unseen", 7); !almostEqual(got, 16.0/3.0, 1e-12) {
		t.Fatalf("unseen key should fall back to global mean, got %g", got)
	}
}

func TestRewardFuncAndConstantModel(t *testing.T) {
	f := RewardFunc[int, int](func(c, d int) float64 { return float64(c + d) })
	if f.Predict(2, 3) != 5 {
		t.Fatal("RewardFunc broken")
	}
	c := ConstantModel[int, int]{Value: 7}
	if c.Predict(0, 0) != 7 {
		t.Fatal("ConstantModel broken")
	}
}
