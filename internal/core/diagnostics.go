package core

import (
	"context"
	"fmt"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// Diagnostics summarizes how well a trace supports evaluating a target
// policy — the paper's "coverage and randomness" concern (§4.1) made
// quantitative. Compute it before trusting any IPS/DR estimate.
type Diagnostics struct {
	// N is the trace length.
	N int
	// ESS is the effective sample size of the importance weights.
	// ESS ≪ N means a few records dominate the estimate.
	ESS float64
	// MatchRate is the fraction of records whose logged decision is the
	// modal decision of the new policy — the coverage available to
	// matching (CFA-style) evaluators.
	MatchRate float64
	// MeanWeight is the average importance weight; it should be close
	// to 1 when propensities are calibrated.
	MeanWeight float64
	// MaxWeight is the largest importance weight.
	MaxWeight float64
	// ZeroSupport counts records where the new policy puts zero
	// probability on the logged decision (they contribute nothing to
	// IPS/DR corrections).
	ZeroSupport int
	// MinPropensity is the smallest logged propensity.
	MinPropensity float64
}

// String renders the diagnostics for operator consumption.
func (d Diagnostics) String() string {
	return fmt.Sprintf(
		"n=%d ess=%.1f match=%.1f%% w̄=%.3f wmax=%.1f zero-support=%d min-propensity=%.4f",
		d.N, d.ESS, 100*d.MatchRate, d.MeanWeight, d.MaxWeight, d.ZeroSupport, d.MinPropensity)
}

// Diagnose computes overlap diagnostics between the trace's logging
// policy and a target policy.
func Diagnose[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D]) (Diagnostics, error) {
	return DiagnoseCtx(context.Background(), t, newPolicy)
}

// diagnoseCheckEvery is how many records DiagnoseCtx scans between
// context checks: frequent enough that cancelling a huge trace's
// diagnostic pass takes effect promptly, rare enough to be free.
const diagnoseCheckEvery = 8192

// DiagnoseCtx is Diagnose with cooperative cancellation: the scan
// checks ctx every few thousand records and returns ctx's error once
// it has ended. An un-cancelled ctx yields bit-identical diagnostics.
func DiagnoseCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D]) (Diagnostics, error) {
	if len(t) == 0 {
		return Diagnostics{}, ErrEmptyTrace
	}
	if err := t.Validate(); err != nil {
		return Diagnostics{}, err
	}
	d := Diagnostics{N: len(t), MinPropensity: t[0].Propensity}
	weights := make([]float64, len(t))
	matches := 0
	for i, rec := range t {
		if i%diagnoseCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Diagnostics{}, err
			}
		}
		dist := newPolicy.Distribution(rec.Context)
		var pNew float64
		for _, w := range dist {
			if w.Decision == rec.Decision {
				pNew = w.Prob
			}
		}
		w := pNew / rec.Propensity
		weights[i] = w
		if w == 0 {
			d.ZeroSupport++
		}
		if w > d.MaxWeight {
			d.MaxWeight = w
		}
		if argmax(dist) == rec.Decision {
			matches++
		}
		if rec.Propensity < d.MinPropensity {
			d.MinPropensity = rec.Propensity
		}
	}
	d.ESS = mathx.EffectiveSampleSize(weights)
	d.MatchRate = float64(matches) / float64(len(t))
	d.MeanWeight = mathx.Mean(weights)
	return d, nil
}

// Estimator is any function mapping a trace to an Estimate; Bootstrap
// uses it to produce resampling confidence intervals for DM/IPS/DR
// uniformly.
type Estimator[C any, D comparable] func(Trace[C, D]) (Estimate, error)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
	Level  float64
}

// Bootstrap computes a percentile bootstrap confidence interval for an
// estimator by resampling trace records with replacement b times.
// Resamples on which the estimator fails (e.g. no matched records) are
// skipped; if every resample fails, the last error is returned.
func Bootstrap[C any, D comparable](t Trace[C, D], est Estimator[C, D], rng *mathx.RNG, b int, level float64) (Interval, error) {
	return BootstrapCtx(context.Background(), t, est, rng, b, level)
}

// BootstrapCtx is Bootstrap with cooperative cancellation: ctx is
// checked before each resample, so a cancelled ctx stops the run at the
// next resample boundary and returns ctx's error. An un-cancelled ctx
// yields the same interval as Bootstrap for the same rng stream.
func BootstrapCtx[C any, D comparable](ctx context.Context, t Trace[C, D], est Estimator[C, D], rng *mathx.RNG, b int, level float64) (Interval, error) {
	if len(t) == 0 {
		return Interval{}, ErrEmptyTrace
	}
	if b <= 0 {
		b = 200
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("core: confidence level %g out of (0,1)", level)
	}
	var values []float64
	var lastErr error
	resample := make(Trace[C, D], len(t))
	for i := 0; i < b; i++ {
		if err := ctx.Err(); err != nil {
			return Interval{}, err
		}
		for j := range resample {
			resample[j] = t[rng.Intn(len(t))]
		}
		e, err := est(resample)
		if err != nil {
			lastErr = err
			continue
		}
		values = append(values, e.Value)
	}
	if len(values) == 0 {
		return Interval{}, fmt.Errorf("core: all bootstrap resamples failed: %w", lastErr)
	}
	alpha := (1 - level) / 2
	return Interval{
		Lo:    mathx.Quantile(values, alpha),
		Hi:    mathx.Quantile(values, 1-alpha),
		Level: level,
	}, nil
}

// BootstrapStats reports bookkeeping from a seeded bootstrap run, so
// callers can tell a fragile interval (many failed resamples) from a
// solid one and export the distinction as a metric.
type BootstrapStats struct {
	// Resamples is the number of resamples attempted (b after defaulting).
	Resamples int
	// Skipped counts resamples on which the estimator failed; their
	// values do not enter the interval.
	Skipped int
}

// BootstrapSeeded computes the same percentile bootstrap interval as
// Bootstrap, but runs the b resamples on the shared worker pool with
// one independent PCG stream per resample (parallel.ShardedRNG shard i
// drives resample i). The interval is therefore a pure function of
// (t, est, seed, b, level): bit-identical at every worker count,
// including 1. This is the variant drevald serves — bootstrap CIs
// dominate /evaluate latency, and resamples are embarrassingly
// parallel.
//
// Resamples on which the estimator fails are skipped, as in Bootstrap;
// if every resample fails, the error of the last (highest-index)
// failing resample is returned. Use BootstrapSeededStats to learn how
// many resamples were skipped.
func BootstrapSeeded[C any, D comparable](t Trace[C, D], est Estimator[C, D], seed int64, b int, level float64) (Interval, error) {
	iv, _, err := BootstrapSeededStats(t, est, seed, b, level)
	return iv, err
}

// BootstrapSeededStats is BootstrapSeeded plus resample bookkeeping.
// The skipped count is as deterministic as the interval: it depends
// only on (t, est, seed, b), never on the worker count.
func BootstrapSeededStats[C any, D comparable](t Trace[C, D], est Estimator[C, D], seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	return BootstrapSeededStatsCtx(context.Background(), t, est, seed, b, level)
}

// BootstrapSeededCtx is BootstrapSeeded with cooperative cancellation.
func BootstrapSeededCtx[C any, D comparable](ctx context.Context, t Trace[C, D], est Estimator[C, D], seed int64, b int, level float64) (Interval, error) {
	iv, _, err := BootstrapSeededStatsCtx(ctx, t, est, seed, b, level)
	return iv, err
}

// BootstrapSeededStatsCtx is BootstrapSeededStats with cooperative
// cancellation: once ctx ends, no new resample is scheduled on the
// pool, in-flight resamples finish, and ctx's error is returned — this
// is how an abandoned or deadline-exceeded /evaluate stops burning the
// remaining bootstrap. An un-cancelled ctx yields a bit-identical
// interval and stats.
func BootstrapSeededStatsCtx[C any, D comparable](ctx context.Context, t Trace[C, D], est Estimator[C, D], seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	if len(t) == 0 {
		return Interval{}, BootstrapStats{}, ErrEmptyTrace
	}
	if b <= 0 {
		b = 200
	}
	if level <= 0 || level >= 1 {
		return Interval{}, BootstrapStats{}, fmt.Errorf("core: confidence level %g out of (0,1)", level)
	}
	type draw struct {
		value float64
		err   error
	}
	sh := parallel.NewShardedRNG(seed)
	draws, err := parallel.TimesCtx(ctx, b, 0, func(i int) (draw, error) {
		rng := sh.Shard(i)
		resample := make(Trace[C, D], len(t))
		for j := range resample {
			resample[j] = t[rng.Intn(len(t))]
		}
		e, err := est(resample)
		if err != nil {
			return draw{err: err}, nil
		}
		return draw{value: e.Value}, nil
	})
	if err != nil {
		return Interval{}, BootstrapStats{}, err
	}
	stats := BootstrapStats{Resamples: b}
	values := make([]float64, 0, b)
	var lastErr error
	for _, d := range draws {
		if d.err != nil {
			lastErr = d.err
			stats.Skipped++
			continue
		}
		values = append(values, d.value)
	}
	if len(values) == 0 {
		return Interval{}, stats, fmt.Errorf("core: all bootstrap resamples failed: %w", lastErr)
	}
	alpha := (1 - level) / 2
	return Interval{
		Lo:    mathx.Quantile(values, alpha),
		Hi:    mathx.Quantile(values, 1-alpha),
		Level: level,
	}, stats, nil
}
