package core

import (
	"context"
	"fmt"
	"math"

	"drnet/internal/mathx"
)

// This file holds the columnar estimator hot path: every estimator in
// estimators.go/switchdr.go/diagnostics.go re-expressed over a
// TraceView. Each *View function is bit-identical to its Trace
// counterpart (same floats, same errors, same text) for pure policies
// and models — the per-record quantities are read from per-unique-
// context tables holding the exact values the slice path recomputes
// per record, and every reduction runs in the same index order.
// view_equivalence_test.go enforces this across worker counts 1/2/8.

// DirectMethodView is DirectMethod over a columnar view.
func DirectMethodView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D]) (Estimate, error) {
	return DirectMethodViewCtx(context.Background(), v, newPolicy, model)
}

// DirectMethodViewCtx is DirectMethodCtx over a columnar view.
func DirectMethodViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D]) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	if tb.anyInvalid {
		i, err := tb.firstInvalidFull(v.ctxFirst)
		return Estimate{}, fmt.Errorf("record %d: %w", i, err)
	}
	mt := buildModelTable(v, tb, model)
	defer mt.release()
	cp := getFloats(n)
	defer putFloats(cp)
	contrib := *cp
	err := forEachRecordCtx(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			contrib[i] = mt.dm[v.ctxCodes[i]]
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return summarizeContributions(contrib), nil
}

// IPSView is IPS over a columnar view. The view was validated at
// construction, so the slice path's Trace.Validate pass is skipped.
func IPSView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], opts IPSOptions) (Estimate, error) {
	return IPSViewCtx(context.Background(), v, newPolicy, opts)
}

// IPSViewCtx is IPSCtx over a columnar view.
func IPSViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D], opts IPSOptions) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	wp, cp := getFloats(n), getFloats(n)
	defer putFloats(wp)
	defer putFloats(cp)
	weights, contrib := *wp, *cp
	k := tb.k
	if err := forEachRecordCtx(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			w := tb.probFirst[int(v.ctxCodes[i])*k+int(v.decCodes[i])] / v.propensities[i]
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			weights[i] = w
			contrib[i] = w * v.rewards[i]
		}
		return nil
	}); err != nil {
		return Estimate{}, err
	}
	maxW := maxWeight(weights)
	var est Estimate
	if opts.SelfNormalize {
		est.Value = mathx.WeightedMean(v.rewards, weights)
		// Plug-in stderr via the linearized influence function of SNIPS.
		nf := float64(n)
		wbar := mathx.Mean(weights)
		if wbar > 0 {
			ip := getFloats(n)
			infl := *ip
			for i := range infl {
				infl[i] = weights[i] * (v.rewards[i] - est.Value) / wbar
			}
			est.StdErr = mathx.StdDev(infl) / math.Sqrt(nf)
			putFloats(ip)
		}
		est.N = n
	} else {
		est = summarizeContributions(contrib)
	}
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}

// DoublyRobustView is DoublyRobust over a columnar view.
func DoublyRobustView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts DROptions) (Estimate, error) {
	return DoublyRobustViewCtx(context.Background(), v, newPolicy, model, opts)
}

// DoublyRobustViewCtx is DoublyRobustCtx over a columnar view.
func DoublyRobustViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts DROptions) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	if tb.anyInvalid {
		i, err := tb.firstInvalidFull(v.ctxFirst)
		return Estimate{}, fmt.Errorf("record %d: %w", i, err)
	}
	mt := buildModelTable(v, tb, model)
	defer mt.release()
	dp, wp, rp, cp := getFloats(n), getFloats(n), getFloats(n), getFloats(n)
	defer putFloats(dp)
	defer putFloats(wp)
	defer putFloats(rp)
	defer putFloats(cp)
	dmPart, weights, resid, contrib := *dp, *wp, *rp, *cp
	k := tb.k
	err := forEachRecordCtx(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			u, kc := int(v.ctxCodes[i]), int(v.decCodes[i])
			dmPart[i] = mt.dm[u]
			w := tb.probFirst[u*k+kc] / v.propensities[i]
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			weights[i] = w
			resid[i] = v.rewards[i] - mt.pred[u*k+kc]
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	maxW := maxWeight(weights)

	if opts.SelfNormalize {
		sumW := 0.0
		for _, w := range weights {
			sumW += w
		}
		norm := float64(n)
		if sumW > 0 {
			norm = sumW
		}
		for i := range contrib {
			contrib[i] = dmPart[i] + float64(n)/norm*weights[i]*resid[i]
		}
	} else {
		for i := range contrib {
			contrib[i] = dmPart[i] + weights[i]*resid[i]
		}
	}
	est := summarizeContributions(contrib)
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}

// SwitchDRView is SwitchDR over a columnar view.
func SwitchDRView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts SwitchOptions) (Estimate, error) {
	return SwitchDRViewCtx(context.Background(), v, newPolicy, model, opts)
}

// SwitchDRViewCtx is SwitchDRCtx over a columnar view.
func SwitchDRViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts SwitchOptions) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	wp := getFloats(n)
	defer putFloats(wp)
	weights := *wp
	k := tb.k
	for i := 0; i < n; i++ {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		weights[i] = tb.probFirst[int(v.ctxCodes[i])*k+int(v.decCodes[i])] / v.propensities[i]
	}
	tau := opts.Tau
	if tau <= 0 {
		tau = math.Max(1, mathx.Quantile(weights, 0.95))
	}
	// The slice path surfaces the first invalid distribution from its
	// contribution pass; the view knows it up front (same error value).
	if tb.anyInvalid {
		_, err := tb.firstInvalidFull(v.ctxFirst)
		return Estimate{}, err
	}
	mt := buildModelTable(v, tb, model)
	defer mt.release()
	cp, kp := getFloats(n), getFloats(n)
	defer putFloats(cp)
	defer putFloats(kp)
	contrib := *cp
	kept := (*kp)[:0]
	maxW := 0.0
	for i := 0; i < n; i++ {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		u, kc := int(v.ctxCodes[i]), int(v.decCodes[i])
		dm := mt.dm[u]
		if weights[i] <= tau {
			contrib[i] = dm + weights[i]*(v.rewards[i]-mt.pred[u*k+kc])
			//lint:allow hotalloc appends into pooled scratch; grows only until capacity settles
			kept = append(kept, weights[i])
			if weights[i] > maxW {
				maxW = weights[i]
			}
		} else {
			contrib[i] = dm
		}
	}
	est := summarizeContributions(contrib)
	if len(kept) > 0 {
		est.ESS = mathx.EffectiveSampleSize(kept)
	}
	est.MaxWeight = maxW
	return est, nil
}

// MatchedRewardsView is MatchedRewards over a columnar view.
func MatchedRewardsView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D]) (Estimate, error) {
	return MatchedRewardsViewCtx(context.Background(), v, newPolicy)
}

// MatchedRewardsViewCtx is MatchedRewardsCtx over a columnar view.
func MatchedRewardsViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D]) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	mp := getFloats(n)
	defer putFloats(mp)
	matched := (*mp)[:0]
	for i := 0; i < n; i++ {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		if tb.argmax[v.ctxCodes[i]] == v.decCodes[i] {
			//lint:allow hotalloc appends into pooled scratch; grows only until capacity settles
			matched = append(matched, v.rewards[i])
		}
	}
	if len(matched) == 0 {
		return Estimate{}, ErrNoMatches
	}
	return summarizeContributions(matched), nil
}

// DiagnoseView is Diagnose over a columnar view.
func DiagnoseView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D]) (Diagnostics, error) {
	return DiagnoseViewCtx(context.Background(), v, newPolicy)
}

// DiagnoseViewCtx is DiagnoseCtx over a columnar view. The view was
// validated at construction, so the slice path's Trace.Validate pass
// is skipped.
func DiagnoseViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D]) (Diagnostics, error) {
	n := v.Len()
	if n == 0 {
		return Diagnostics{}, ErrEmptyTrace
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	d := Diagnostics{N: n, MinPropensity: v.propensities[0]}
	wp := getFloats(n)
	defer putFloats(wp)
	weights := *wp
	matches := 0
	k := tb.k
	for i := 0; i < n; i++ {
		if i%diagnoseCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Diagnostics{}, err
			}
		}
		u, kc := int(v.ctxCodes[i]), int(v.decCodes[i])
		w := tb.probLast[u*k+kc] / v.propensities[i]
		weights[i] = w
		if w == 0 {
			d.ZeroSupport++
		}
		if w > d.MaxWeight {
			d.MaxWeight = w
		}
		if tb.argmax[u] == v.decCodes[i] {
			matches++
		}
		if v.propensities[i] < d.MinPropensity {
			d.MinPropensity = v.propensities[i]
		}
	}
	d.ESS = mathx.EffectiveSampleSize(weights)
	d.MatchRate = float64(matches) / float64(n)
	d.MeanWeight = mathx.Mean(weights)
	return d, nil
}

// CrossFitDRView is CrossFitDR over a columnar view: the policy is
// flattened once for all folds, per-fold evaluation runs by index, and
// only the fit part is materialized (the generic ModelFitter consumes
// a Trace).
func CrossFitDRView[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], fit ModelFitter[C, D], folds int, opts DROptions) (Estimate, error) {
	n := v.Len()
	if n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if folds < 2 {
		return Estimate{}, fmt.Errorf("core: cross-fitting needs at least 2 folds")
	}
	if folds > n {
		folds = n
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()

	var total, weightSum float64
	var used int
	agg := Estimate{}
	for f := 0; f < folds; f++ {
		var fitPart Trace[C, D]
		ip := getInts(0)
		evalIdx := (*ip)[:0]
		for i := 0; i < n; i++ {
			if i%folds == f {
				//lint:allow hotalloc per-fold index build, O(n/folds) amortized once per cross-fit call
				evalIdx = append(evalIdx, i)
			} else {
				//lint:allow hotalloc per-fold training partition; cross-fitting is inherently O(n) per fold
				fitPart = append(fitPart, v.At(i))
			}
		}
		*ip = evalIdx
		if len(evalIdx) == 0 {
			putInts(ip)
			continue
		}
		model, err := fit(fitPart)
		if err != nil {
			putInts(ip)
			return Estimate{}, fmt.Errorf("core: fold %d model fit: %w", f, err)
		}
		est, err := doublyRobustViewIdx(v, tb, evalIdx, model, opts)
		putInts(ip)
		if err != nil {
			return Estimate{}, fmt.Errorf("core: fold %d: %w", f, err)
		}
		w := float64(est.N)
		total += est.Value * w
		weightSum += w
		used += est.N
		agg.ESS += est.ESS
		if est.MaxWeight > agg.MaxWeight {
			agg.MaxWeight = est.MaxWeight
		}
		// Pool fold variances (approximate: folds are independent).
		agg.StdErr += est.StdErr * est.StdErr * w * w
	}
	if weightSum == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	agg.Value = total / weightSum
	agg.N = used
	agg.StdErr = math.Sqrt(agg.StdErr) / weightSum
	return agg, nil
}

// DirectMethodViewIdx evaluates the Direct Method over the record
// multiset idx (indices into v, duplicates allowed) — bit-identical to
// DirectMethod on the materialized resample. Bootstrap resamples use
// this family instead of copying records.
func DirectMethodViewIdx[C any, D comparable](v *TraceView[C, D], idx []int, newPolicy Policy[C, D], model RewardModel[C, D]) (Estimate, error) {
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	return directMethodViewIdx(v, tb, idx, model)
}

func directMethodViewIdx[C any, D comparable](v *TraceView[C, D], tb *viewTables[D], idx []int, model RewardModel[C, D]) (Estimate, error) {
	if len(idx) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if tb.anyInvalid {
		if j, err := tb.firstInvalidIdx(v.ctxCodes, idx); err != nil {
			return Estimate{}, fmt.Errorf("record %d: %w", j, err)
		}
	}
	mt := buildModelTable(v, tb, model)
	defer mt.release()
	cp := getFloats(len(idx))
	defer putFloats(cp)
	contrib := *cp
	for j, id := range idx {
		contrib[j] = mt.dm[v.ctxCodes[id]]
	}
	return summarizeContributions(contrib), nil
}

// IPSViewIdx evaluates IPS over the record multiset idx —
// bit-identical to IPS on the materialized resample.
func IPSViewIdx[C any, D comparable](v *TraceView[C, D], idx []int, newPolicy Policy[C, D], opts IPSOptions) (Estimate, error) {
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	return ipsViewIdx(v, tb, idx, opts)
}

func ipsViewIdx[C any, D comparable](v *TraceView[C, D], tb *viewTables[D], idx []int, opts IPSOptions) (Estimate, error) {
	m := len(idx)
	if m == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	wp, cp, rp := getFloats(m), getFloats(m), getFloats(m)
	defer putFloats(wp)
	defer putFloats(cp)
	defer putFloats(rp)
	weights, contrib, rews := *wp, *cp, *rp
	k := tb.k
	for j, id := range idx {
		w := tb.probFirst[int(v.ctxCodes[id])*k+int(v.decCodes[id])] / v.propensities[id]
		if opts.Clip > 0 && w > opts.Clip {
			w = opts.Clip
		}
		weights[j] = w
		rews[j] = v.rewards[id]
		contrib[j] = w * rews[j]
	}
	maxW := maxWeight(weights)
	var est Estimate
	if opts.SelfNormalize {
		est.Value = mathx.WeightedMean(rews, weights)
		nf := float64(m)
		wbar := mathx.Mean(weights)
		if wbar > 0 {
			ifp := getFloats(m)
			infl := *ifp
			for j := range infl {
				infl[j] = weights[j] * (rews[j] - est.Value) / wbar
			}
			est.StdErr = mathx.StdDev(infl) / math.Sqrt(nf)
			putFloats(ifp)
		}
		est.N = m
	} else {
		est = summarizeContributions(contrib)
	}
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}

// DoublyRobustViewIdx evaluates DR over the record multiset idx —
// bit-identical to DoublyRobust on the materialized resample.
func DoublyRobustViewIdx[C any, D comparable](v *TraceView[C, D], idx []int, newPolicy Policy[C, D], model RewardModel[C, D], opts DROptions) (Estimate, error) {
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	return doublyRobustViewIdx(v, tb, idx, model, opts)
}

func doublyRobustViewIdx[C any, D comparable](v *TraceView[C, D], tb *viewTables[D], idx []int, model RewardModel[C, D], opts DROptions) (Estimate, error) {
	m := len(idx)
	if m == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if tb.anyInvalid {
		if j, err := tb.firstInvalidIdx(v.ctxCodes, idx); err != nil {
			return Estimate{}, fmt.Errorf("record %d: %w", j, err)
		}
	}
	mt := buildModelTable(v, tb, model)
	defer mt.release()
	dp, wp, rp, cp := getFloats(m), getFloats(m), getFloats(m), getFloats(m)
	defer putFloats(dp)
	defer putFloats(wp)
	defer putFloats(rp)
	defer putFloats(cp)
	dmPart, weights, resid, contrib := *dp, *wp, *rp, *cp
	k := tb.k
	for j, id := range idx {
		u, kc := int(v.ctxCodes[id]), int(v.decCodes[id])
		dmPart[j] = mt.dm[u]
		w := tb.probFirst[u*k+kc] / v.propensities[id]
		if opts.Clip > 0 && w > opts.Clip {
			w = opts.Clip
		}
		weights[j] = w
		resid[j] = v.rewards[id] - mt.pred[u*k+kc]
	}
	maxW := maxWeight(weights)
	if opts.SelfNormalize {
		sumW := 0.0
		for _, w := range weights {
			sumW += w
		}
		norm := float64(m)
		if sumW > 0 {
			norm = sumW
		}
		for j := range contrib {
			contrib[j] = dmPart[j] + float64(m)/norm*weights[j]*resid[j]
		}
	} else {
		for j := range contrib {
			contrib[j] = dmPart[j] + weights[j]*resid[j]
		}
	}
	est := summarizeContributions(contrib)
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}
