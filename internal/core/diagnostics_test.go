package core

import (
	"errors"
	"testing"

	"drnet/internal/mathx"
)

func TestDiagnoseIdenticalPolicies(t *testing.T) {
	b := newTestBandit(31, 0.1)
	old := banditOldPolicy(0.4)
	ctxs := b.contexts(500)
	tr := CollectTrace(ctxs, old, b.drawReward, b.rng)
	d, err := Diagnose(tr, old)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluating the logging policy itself: all weights are 1.
	if !almostEqual(d.MeanWeight, 1, 1e-9) || !almostEqual(d.ESS, float64(d.N), 1e-6) {
		t.Fatalf("identical policies should have unit weights: %+v", d)
	}
	if d.ZeroSupport != 0 {
		t.Fatal("no zero-support records expected")
	}
	if d.String() == "" {
		t.Fatal("empty diagnostics string")
	}
}

func TestDiagnoseDisjointPolicies(t *testing.T) {
	b := newTestBandit(32, 0.1)
	old := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 0 }}
	ctxs := b.contexts(100)
	tr := CollectTrace(ctxs, old, b.drawReward, b.rng)
	np := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 2 }}
	d, err := Diagnose(tr, np)
	if err != nil {
		t.Fatal(err)
	}
	if d.ZeroSupport != 100 || d.MatchRate != 0 {
		t.Fatalf("disjoint policies: %+v", d)
	}
}

func TestDiagnoseLowOverlapESS(t *testing.T) {
	b := newTestBandit(33, 0.1)
	tr, _ := collectBanditTrace(b, 400, 0.1) // mostly d=0
	np := banditNewPolicy(0.1)               // mostly d=2
	d, err := Diagnose(tr, np)
	if err != nil {
		t.Fatal(err)
	}
	if d.ESS > float64(d.N)/3 {
		t.Fatalf("low-overlap ESS should be small: %g of n=%d", d.ESS, d.N)
	}
	if d.MaxWeight < 5 {
		t.Fatalf("expected large max weight, got %g", d.MaxWeight)
	}
}

func TestDiagnoseErrors(t *testing.T) {
	var empty Trace[float64, int]
	if _, err := Diagnose(empty, banditNewPolicy(0.1)); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	bad := Trace[float64, int]{{Context: 0, Decision: 0, Propensity: 0}}
	if _, err := Diagnose(bad, banditNewPolicy(0.1)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	b := newTestBandit(34, 0.1)
	tr, ctxs := collectBanditTrace(b, 800, 0.5)
	np := banditNewPolicy(0.2)
	truth := TrueValue(ctxs, np, b.trueReward)
	rng := mathx.NewRNG(77)
	ci, err := Bootstrap(tr, func(t2 Trace[float64, int]) (Estimate, error) {
		return DoublyRobust(t2, np, RewardFunc[float64, int](b.trueReward), DROptions{})
	}, rng, 300, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate interval [%g, %g]", ci.Lo, ci.Hi)
	}
	if truth < ci.Lo-0.05 || truth > ci.Hi+0.05 {
		t.Fatalf("truth %g far outside CI [%g, %g]", truth, ci.Lo, ci.Hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	rng := mathx.NewRNG(1)
	var empty Trace[float64, int]
	ok := func(Trace[float64, int]) (Estimate, error) { return Estimate{}, nil }
	if _, err := Bootstrap(empty, ok, rng, 10, 0.95); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	tr := Trace[float64, int]{{Propensity: 1}}
	if _, err := Bootstrap(tr, ok, rng, 10, 1.5); err == nil {
		t.Fatal("expected level error")
	}
	failing := func(Trace[float64, int]) (Estimate, error) { return Estimate{}, ErrNoMatches }
	if _, err := Bootstrap(tr, failing, rng, 10, 0.95); err == nil {
		t.Fatal("expected all-resamples-failed error")
	}
}

func TestCollectTracePropensities(t *testing.T) {
	b := newTestBandit(35, 0)
	old := banditOldPolicy(0.3)
	ctxs := b.contexts(200)
	tr := CollectTrace(ctxs, old, b.drawReward, b.rng)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range tr {
		want := Prob(old, rec.Context, rec.Decision)
		if rec.Propensity != want {
			t.Fatalf("propensity %g, want %g", rec.Propensity, want)
		}
	}
}

func TestTrueValueEmpty(t *testing.T) {
	if TrueValue(nil, banditNewPolicy(0.1), func(float64, int) float64 { return 1 }) != 0 {
		t.Fatal("empty contexts should give 0")
	}
}
