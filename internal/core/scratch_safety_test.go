package core

import (
	"sync"
	"testing"
)

// TestScratchNoCrossRequestContamination runs 32 concurrent evaluation
// streams, each over its own trace, and asserts every stream keeps
// producing its precomputed results while the others hammer the shared
// scratch pools. Run under -race this also proves the pooled buffers
// are never shared between in-flight evaluations.
func TestScratchNoCrossRequestContamination(t *testing.T) {
	const (
		streams = 32
		rounds  = 20
	)
	type fixture struct {
		v     *TraceView[float64, int]
		np    Policy[float64, int]
		model RewardModel[float64, int]
		dm    Estimate
		ips   Estimate
		dr    Estimate
		diag  Diagnostics
		iv    Interval
	}
	fixtures := make([]fixture, streams)
	for s := range fixtures {
		tr, np, model := determinismTrace(600 + 37*s)
		v, err := NewTraceView(tr)
		if err != nil {
			t.Fatalf("stream %d: NewTraceView: %v", s, err)
		}
		fx := fixture{v: v, np: np, model: model}
		if fx.dm, err = DirectMethodView(v, np, model); err != nil {
			t.Fatalf("stream %d: DM: %v", s, err)
		}
		if fx.ips, err = IPSView(v, np, IPSOptions{Clip: 4, SelfNormalize: true}); err != nil {
			t.Fatalf("stream %d: IPS: %v", s, err)
		}
		if fx.dr, err = DoublyRobustView(v, np, model, DROptions{Clip: 4}); err != nil {
			t.Fatalf("stream %d: DR: %v", s, err)
		}
		if fx.diag, err = DiagnoseView(v, np); err != nil {
			t.Fatalf("stream %d: Diagnose: %v", s, err)
		}
		if fx.iv, err = BootstrapDRViewSeeded(v, np, DROptions{Clip: 4}, int64(s), 10, 0.9); err != nil {
			t.Fatalf("stream %d: bootstrap: %v", s, err)
		}
		fixtures[s] = fx
	}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := range fixtures {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fx := &fixtures[s]
			for r := 0; r < rounds; r++ {
				if got, err := DirectMethodView(fx.v, fx.np, fx.model); err != nil || got != fx.dm {
					t.Errorf("stream %d round %d: DM %+v (err %v) != %+v", s, r, got, err, fx.dm)
					return
				}
				if got, err := IPSView(fx.v, fx.np, IPSOptions{Clip: 4, SelfNormalize: true}); err != nil || got != fx.ips {
					t.Errorf("stream %d round %d: IPS %+v (err %v) != %+v", s, r, got, err, fx.ips)
					return
				}
				if got, err := DoublyRobustView(fx.v, fx.np, fx.model, DROptions{Clip: 4}); err != nil || got != fx.dr {
					t.Errorf("stream %d round %d: DR %+v (err %v) != %+v", s, r, got, err, fx.dr)
					return
				}
				if got, err := DiagnoseView(fx.v, fx.np); err != nil || got != fx.diag {
					t.Errorf("stream %d round %d: Diagnose %+v (err %v) != %+v", s, r, got, err, fx.diag)
					return
				}
				if got, err := BootstrapDRViewSeeded(fx.v, fx.np, DROptions{Clip: 4}, int64(s), 10, 0.9); err != nil || got != fx.iv {
					t.Errorf("stream %d round %d: bootstrap %+v (err %v) != %+v", s, r, got, err, fx.iv)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
}

// TestEstimatorSteadyStateAllocs asserts the columnar DM/IPS/DR hot
// path over a warm view allocates at most a small constant per
// evaluation — the slice path allocates O(n). The trace stays below
// ParallelThreshold so the measurement excludes goroutine scheduling,
// and the model is prefit so only the estimator itself is measured.
func TestEstimatorSteadyStateAllocs(t *testing.T) {
	const n = 2000
	tr, np, _ := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	model := FitTableView(v)
	var sink Estimate
	warm := func(run func()) float64 {
		// Warm the pools before measuring so first-use growth is
		// excluded from the steady state.
		for i := 0; i < 3; i++ {
			run()
		}
		return testing.AllocsPerRun(20, run)
	}
	// Steady state allocates per UNIQUE context (each Distribution call
	// returns a fresh slice — inherent to the Policy interface), never
	// per record: budget = U + fixed table overhead, independent of n.
	budget := float64(v.NumContexts()) + 16
	cases := []struct {
		name   string
		budget float64
		run    func()
	}{
		{"DM", budget, func() { sink, _ = DirectMethodView(v, np, model) }},
		{"IPS", budget, func() { sink, _ = IPSView(v, np, IPSOptions{Clip: 4, SelfNormalize: true}) }},
		{"DR", budget, func() { sink, _ = DoublyRobustView(v, np, model, DROptions{Clip: 4, SelfNormalize: true}) }},
	}
	for _, c := range cases {
		if got := warm(c.run); got > c.budget {
			t.Errorf("%s: %.1f allocs per steady-state evaluation, budget %.0f", c.name, got, c.budget)
		}
	}
	_ = sink
}

// TestBootstrapSteadyStateAllocs bounds per-resample allocation of the
// packaged refit-DR bootstrap: the per-resample cost must be O(1)
// allocations (pooled index + sufficient-statistic buffers), not the
// O(n) record copy plus O(U·K) model maps of the slice closure.
func TestBootstrapSteadyStateAllocs(t *testing.T) {
	const (
		n = 2000
		b = 50
	)
	tr, np, _ := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	run := func() {
		if _, _, err := BootstrapDRViewSeededStats(v, np, DROptions{Clip: 4}, 17, b, 0.9); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	got := testing.AllocsPerRun(10, run)
	// Budget: fixed harness overhead (sharded RNG, draw collection,
	// quantile copies, worker bookkeeping) plus ~2 allocs per resample
	// for RNG shards — far from the ~75·n of the record-copy path.
	budget := float64(16*b + 200)
	if got > budget {
		t.Errorf("bootstrap: %.0f allocs per run (b=%d resamples), budget %.0f", got, b, budget)
	}
}
