package core

import (
	"fmt"

	"drnet/internal/mathx"
)

// Weighted pairs a decision with its probability under some policy.
type Weighted[D comparable] struct {
	Decision D
	Prob     float64
}

// Policy is a stochastic mapping from contexts to decisions: the paper's
// µ(d|c). Distribution must return probabilities that sum to one over
// the support for the given context.
type Policy[C any, D comparable] interface {
	// Distribution returns the decision distribution for context c.
	Distribution(c C) []Weighted[D]
}

// Prob returns µ(d|c) for any policy, zero when d is outside the
// support.
func Prob[C any, D comparable](p Policy[C, D], c C, d D) float64 {
	for _, w := range p.Distribution(c) {
		if w.Decision == d {
			return w.Prob
		}
	}
	return 0
}

// Sample draws a decision from p's distribution at context c.
func Sample[C any, D comparable](p Policy[C, D], c C, rng *mathx.RNG) D {
	dist := p.Distribution(c)
	weights := make([]float64, len(dist))
	for i, w := range dist {
		weights[i] = w.Prob
	}
	return dist[rng.Categorical(weights)].Decision
}

// ValidateDistribution checks that a distribution is a proper
// probability vector (non-negative, sums to ~1).
func ValidateDistribution[D comparable](dist []Weighted[D]) error {
	if len(dist) == 0 {
		return fmt.Errorf("core: empty distribution")
	}
	sum := 0.0
	for _, w := range dist {
		if w.Prob < 0 {
			return fmt.Errorf("core: negative probability %g for decision %v", w.Prob, w.Decision)
		}
		sum += w.Prob
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("core: distribution sums to %g", sum)
	}
	return nil
}

// DeterministicPolicy wraps a decision function into a Policy that puts
// probability one on the chosen decision. This models the common
// networking case of §4.1: policies "designed to optimize performance"
// with no randomization.
type DeterministicPolicy[C any, D comparable] struct {
	Choose func(c C) D
}

// Distribution implements Policy.
func (p DeterministicPolicy[C, D]) Distribution(c C) []Weighted[D] {
	return []Weighted[D]{{Decision: p.Choose(c), Prob: 1}}
}

// UniformPolicy chooses uniformly at random among a fixed decision set,
// the fully randomized logging policy used by CFA-style systems.
type UniformPolicy[C any, D comparable] struct {
	Decisions []D
}

// Distribution implements Policy.
func (p UniformPolicy[C, D]) Distribution(C) []Weighted[D] {
	out := make([]Weighted[D], len(p.Decisions))
	q := 1 / float64(len(p.Decisions))
	for i, d := range p.Decisions {
		out[i] = Weighted[D]{Decision: d, Prob: q}
	}
	return out
}

// EpsilonGreedyPolicy follows a base decision function with probability
// 1-ε and explores uniformly over Decisions with probability ε. This is
// the paper's suggested remedy for the coverage problem: "augment
// policies to introduce randomness where impact on overall performance
// is small".
type EpsilonGreedyPolicy[C any, D comparable] struct {
	Base      func(c C) D
	Decisions []D
	Epsilon   float64
}

// Distribution implements Policy.
func (p EpsilonGreedyPolicy[C, D]) Distribution(c C) []Weighted[D] {
	if len(p.Decisions) == 0 {
		panic("core: EpsilonGreedyPolicy has no decisions")
	}
	best := p.Base(c)
	share := p.Epsilon / float64(len(p.Decisions))
	out := make([]Weighted[D], 0, len(p.Decisions)+1)
	seen := false
	for _, d := range p.Decisions {
		pr := share
		if d == best {
			pr += 1 - p.Epsilon
			seen = true
		}
		out = append(out, Weighted[D]{Decision: d, Prob: pr})
	}
	if !seen {
		// Base chose outside the exploration set; give it its greedy mass.
		out = append(out, Weighted[D]{Decision: best, Prob: 1 - p.Epsilon})
	}
	return out
}

// MixturePolicy blends two policies: with probability Alpha it follows A,
// otherwise B. Useful for constructing new policies that partially
// overlap the old one (as in the paper's Figure 7a setup, where 50% of
// ISP-1 clients move to a new configuration).
type MixturePolicy[C any, D comparable] struct {
	A, B  Policy[C, D]
	Alpha float64
}

// Distribution implements Policy.
func (p MixturePolicy[C, D]) Distribution(c C) []Weighted[D] {
	acc := make(map[D]float64)
	var order []D
	for _, w := range p.A.Distribution(c) {
		if _, ok := acc[w.Decision]; !ok {
			order = append(order, w.Decision)
		}
		acc[w.Decision] += p.Alpha * w.Prob
	}
	for _, w := range p.B.Distribution(c) {
		if _, ok := acc[w.Decision]; !ok {
			order = append(order, w.Decision)
		}
		acc[w.Decision] += (1 - p.Alpha) * w.Prob
	}
	out := make([]Weighted[D], 0, len(order))
	for _, d := range order {
		out = append(out, Weighted[D]{Decision: d, Prob: acc[d]})
	}
	return out
}

// FuncPolicy adapts a plain distribution function into a Policy.
type FuncPolicy[C any, D comparable] func(c C) []Weighted[D]

// Distribution implements Policy.
func (f FuncPolicy[C, D]) Distribution(c C) []Weighted[D] { return f(c) }
