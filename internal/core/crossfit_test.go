package core

import (
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestCrossFitDRMatchesDRWithFixedModel(t *testing.T) {
	// When the fitter ignores its input (returns a fixed model), the
	// cross-fit estimate must equal plain DR up to fold arithmetic.
	b := newTestBandit(61, 0.1)
	tr, _ := collectBanditTrace(b, 1000, 0.5)
	np := banditNewPolicy(0.2)
	model := RewardFunc[float64, int](b.trueReward)
	fixed := func(Trace[float64, int]) (RewardModel[float64, int], error) { return model, nil }
	cf, err := CrossFitDR(tr, np, fixed, 2, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DoublyRobust(tr, np, model, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf.Value-dr.Value) > 1e-9 {
		t.Fatalf("cross-fit %g != DR %g with a fixed model", cf.Value, dr.Value)
	}
	if cf.N != dr.N {
		t.Fatalf("N mismatch %d vs %d", cf.N, dr.N)
	}
}

func TestCrossFitDRAvoidsMemorizationBias(t *testing.T) {
	// A memorizing model (exact lookup of logged rewards) zeroes the DR
	// residuals: plain DR degenerates to the biased DM. Cross-fitting
	// restores the correction because the out-of-fold model cannot
	// memorize the evaluated records.
	np := banditNewPolicy(0.1)
	var naiveErrs, cfErrs []float64
	for run := 0; run < 25; run++ {
		b := newTestBandit(int64(700+run), 0.1)
		tr, ctxs := collectBanditTrace(b, 600, 0.6)
		truth := TrueValue(ctxs, np, b.trueReward)

		memorize := func(fit Trace[float64, int]) (RewardModel[float64, int], error) {
			// Lookup table keyed by exact context; unseen contexts get
			// a heavily biased constant.
			lut := make(map[float64]map[int]float64)
			for _, rec := range fit {
				if lut[rec.Context] == nil {
					lut[rec.Context] = make(map[int]float64)
				}
				lut[rec.Context][rec.Decision] = rec.Reward
			}
			return RewardFunc[float64, int](func(c float64, d int) float64 {
				if m, ok := lut[c]; ok {
					if v, ok := m[d]; ok {
						return v
					}
				}
				return -5 // grossly biased fallback
			}), nil
		}
		// Plain DR with the full-trace memorizer.
		fullModel, _ := memorize(tr)
		naive, err := DoublyRobust(tr, np, fullModel, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		cf, err := CrossFitDR(tr, np, memorize, 2, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		naiveErrs = append(naiveErrs, math.Abs(naive.Value-truth))
		cfErrs = append(cfErrs, math.Abs(cf.Value-truth))
	}
	if mathx.Mean(cfErrs) >= mathx.Mean(naiveErrs) {
		t.Fatalf("cross-fit error %g should beat memorizing DR error %g",
			mathx.Mean(cfErrs), mathx.Mean(naiveErrs))
	}
}

func TestCrossFitDRErrors(t *testing.T) {
	np := banditNewPolicy(0.1)
	ok := func(Trace[float64, int]) (RewardModel[float64, int], error) {
		return ConstantModel[float64, int]{}, nil
	}
	if _, err := CrossFitDR(nil, np, ok, 2, DROptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	tr := Trace[float64, int]{{Context: 0.1, Decision: 0, Reward: 1, Propensity: 1}}
	if _, err := CrossFitDR(tr, np, ok, 1, DROptions{}); err == nil {
		t.Fatal("folds < 2 should fail")
	}
	failing := func(Trace[float64, int]) (RewardModel[float64, int], error) {
		return nil, errors.New("boom")
	}
	tr2 := Trace[float64, int]{
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: 1},
		{Context: 0.2, Decision: 0, Reward: 1, Propensity: 1},
	}
	if _, err := CrossFitDR(tr2, np, failing, 2, DROptions{}); err == nil {
		t.Fatal("fitter error should propagate")
	}
	bad := Trace[float64, int]{{Context: 0.1, Decision: 0, Reward: 1, Propensity: 0}}
	if _, err := CrossFitDR(bad, np, ok, 2, DROptions{}); err == nil {
		t.Fatal("invalid propensity should fail")
	}
}

func TestCrossFitDRFoldsCappedAtN(t *testing.T) {
	b := newTestBandit(62, 0)
	tr, _ := collectBanditTrace(b, 3, 0.5)
	np := banditNewPolicy(0.2)
	fixed := func(Trace[float64, int]) (RewardModel[float64, int], error) {
		return RewardFunc[float64, int](b.trueReward), nil
	}
	if _, err := CrossFitDR(tr, np, fixed, 50, DROptions{}); err != nil {
		t.Fatal(err)
	}
}
