package core

// SafeExplorationPolicy operationalizes the paper's §4.1 proposal:
// "persuade network operators and protocol designers to augment
// policies to introduce randomness where impact on overall performance
// is small."
//
// It wraps a deterministic base policy and spends an exploration budget
// Epsilon only on decisions whose predicted regret — the model's
// estimate of how much worse the decision is than the greedy choice —
// is at most MaxRegret. Decisions predicted to be costly are never
// explored, so the logged trace gains the randomness IPS/DR need at a
// bounded price in live performance.
//
// Compared with uniform ε-greedy at the same budget, safe exploration
// concentrates its probability mass on the near-greedy decisions that
// plausible future policies would actually take, which both cuts the
// exploration cost and raises the effective sample size available for
// evaluating those policies (experiment E10).
type SafeExplorationPolicy[C any, D comparable] struct {
	// Base is the deterministic production policy.
	Base func(c C) D
	// Decisions is the full decision set.
	Decisions []D
	// Model predicts rewards; it only needs to rank decisions well
	// enough to recognize "cheap" deviations.
	Model RewardModel[C, D]
	// Epsilon is the total exploration probability (0 disables).
	Epsilon float64
	// MaxRegret is the largest predicted per-decision regret the
	// operator tolerates exploring.
	MaxRegret float64
}

// Distribution implements Policy.
func (p SafeExplorationPolicy[C, D]) Distribution(c C) []Weighted[D] {
	greedy := p.Base(c)
	if p.Epsilon <= 0 {
		return []Weighted[D]{{Decision: greedy, Prob: 1}}
	}
	greedyValue := p.Model.Predict(c, greedy)
	var safe []D
	for _, d := range p.Decisions {
		if d == greedy {
			continue
		}
		if greedyValue-p.Model.Predict(c, d) <= p.MaxRegret {
			safe = append(safe, d)
		}
	}
	if len(safe) == 0 {
		return []Weighted[D]{{Decision: greedy, Prob: 1}}
	}
	share := p.Epsilon / float64(len(safe))
	out := make([]Weighted[D], 0, len(safe)+1)
	out = append(out, Weighted[D]{Decision: greedy, Prob: 1 - p.Epsilon})
	for _, d := range safe {
		out = append(out, Weighted[D]{Decision: d, Prob: share})
	}
	return out
}
