package core

import (
	"math"
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

// memorizingModel predicts the logged reward exactly for every
// (context, decision) pair that appears in the trace and falls back to
// fallback elsewhere. With it, every DR residual is exactly zero.
func memorizingModel(tr Trace[float64, int], fallback func(float64, int) float64) RewardModel[float64, int] {
	type key struct {
		x float64
		d int
	}
	table := make(map[key]float64, len(tr))
	for _, rec := range tr {
		table[key{rec.Context, rec.Decision}] = rec.Reward
	}
	return RewardFunc[float64, int](func(x float64, d int) float64 {
		if r, ok := table[key{x, d}]; ok {
			return r
		}
		return fallback(x, d)
	})
}

// Property: when the reward model reproduces every logged reward
// exactly (all residuals zero), DR collapses to DM bit-for-bit — the
// importance-weighted correction vanishes term by term.
func TestDRCollapsesToDMWhenResidualsZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, base := randomValidTrace(seed)
		model := memorizingModel(tr, base.Predict)
		dm, err := DirectMethod(tr, np, model)
		if err != nil {
			return false
		}
		for _, selfNorm := range []bool{false, true} {
			dr, err := DoublyRobust(tr, np, model, DROptions{SelfNormalize: selfNorm})
			if err != nil {
				return false
			}
			if dr.Value != dm.Value || dr.StdErr != dm.StdErr || dr.N != dm.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: when the reward model predicts identically zero, DR's DM
// part vanishes and its contributions equal IPS's w·r exactly, so the
// two estimators agree bit-for-bit.
func TestDRCollapsesToIPSWhenModelZeroProperty(t *testing.T) {
	zero := RewardFunc[float64, int](func(float64, int) float64 { return 0 })
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		ips, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			return false
		}
		dr, err := DoublyRobust(tr, np, zero, DROptions{})
		if err != nil {
			return false
		}
		return dr.Value == ips.Value && dr.StdErr == ips.StdErr && dr.ESS == ips.ESS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: plain IPS (no clipping, no self-normalization) equals the
// hand-computed mean of wᵢ·rᵢ with wᵢ = µ_new(dᵢ|cᵢ)/µ_old(dᵢ|cᵢ).
func TestIPSEqualsHandComputedWeightedMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		got, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, rec := range tr {
			sum += Prob(np, rec.Context, rec.Decision) / rec.Propensity * rec.Reward
		}
		want := sum / float64(len(tr))
		return math.Abs(got.Value-want) <= 1e-12*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Kish's effective sample size never exceeds the trace
// length, for every estimator and option combination.
func TestESSNeverExceedsNProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, model := randomValidTrace(seed)
		n := float64(len(tr))
		ests := []func() (Estimate, error){
			func() (Estimate, error) { return DirectMethod(tr, np, model) },
			func() (Estimate, error) { return IPS(tr, np, IPSOptions{}) },
			func() (Estimate, error) { return IPS(tr, np, IPSOptions{Clip: 2}) },
			func() (Estimate, error) { return IPS(tr, np, IPSOptions{SelfNormalize: true}) },
			func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{}) },
			func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{Clip: 2, SelfNormalize: true}) },
		}
		for _, est := range ests {
			e, err := est()
			if err != nil {
				return false
			}
			if e.ESS < 0 || e.ESS > n*(1+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: clipping weights can only lower both the maximum weight and
// the spread of IPS contributions, never raise ESS above n.
func TestClippingBoundsMaxWeightProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, np, _ := randomValidTrace(seed)
		clip := 1.5
		clipped, err := IPS(tr, np, IPSOptions{Clip: clip})
		if err != nil {
			return false
		}
		plain, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			return false
		}
		return clipped.MaxWeight <= clip+1e-12 && clipped.MaxWeight <= plain.MaxWeight+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Sanity anchor for the hand-computed-mean property on a fixed tiny
// trace where the expected value is computable by hand:
// two records, weights 0.5/0.5=1 and 0.9/0.3=3, rewards 2 and 1 →
// (1·2 + 3·1)/2 = 2.5.
func TestIPSHandExample(t *testing.T) {
	np := FuncPolicy[float64, int](func(x float64) []Weighted[int] {
		if x == 0 {
			return []Weighted[int]{{Decision: 0, Prob: 0.5}, {Decision: 1, Prob: 0.5}}
		}
		return []Weighted[int]{{Decision: 0, Prob: 0.1}, {Decision: 1, Prob: 0.9}}
	})
	tr := Trace[float64, int]{
		{Context: 0, Decision: 0, Reward: 2, Propensity: 0.5},
		{Context: 1, Decision: 1, Reward: 1, Propensity: 0.3},
	}
	got, err := IPS(tr, np, IPSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-2.5) > 1e-12 {
		t.Fatalf("IPS = %g, want 2.5", got.Value)
	}
	if math.Abs(got.MaxWeight-3) > 1e-12 {
		t.Fatalf("MaxWeight = %g, want 3", got.MaxWeight)
	}
	if want := mathx.EffectiveSampleSize([]float64{1, 3}); got.ESS != want {
		t.Fatalf("ESS = %g, want %g", got.ESS, want)
	}
}
