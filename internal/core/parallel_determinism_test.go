package core

import (
	"strings"
	"testing"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// workerCounts are the counts the acceptance criteria require the
// determinism tests to sweep.
var workerCounts = []int{1, 2, 8}

// withParallelism runs fn with the given pool width and a low enough
// threshold that a testSizeN-record trace takes the parallel path, then
// restores both knobs.
func withParallelism(t *testing.T, workers, threshold int, fn func()) {
	t.Helper()
	oldThreshold := ParallelThreshold
	ParallelThreshold = threshold
	parallel.SetDefaultWorkers(workers)
	defer func() {
		ParallelThreshold = oldThreshold
		parallel.SetDefaultWorkers(0)
	}()
	fn()
}

func determinismTrace(n int) (Trace[float64, int], Policy[float64, int], RewardModel[float64, int]) {
	rng := mathx.NewRNG(1234)
	old := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	ctxs := make([]float64, n)
	for i := range ctxs {
		ctxs[i] = rng.Float64()
	}
	trueReward := func(x float64, d int) float64 { return x * float64(d+1) }
	tr := CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return trueReward(x, d) + rng.Normal(0, 0.2)
	}, rng)
	np := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.1,
	}
	// A slightly biased model so DR's correction term is non-trivial.
	model := RewardFunc[float64, int](func(x float64, d int) float64 {
		return trueReward(x, d) + 0.15
	})
	return tr, np, model
}

// TestEstimatorsParallelBitIdentical asserts that DM, IPS and DR return
// exactly the same Estimate — every float field bit-for-bit — whether
// the contribution loop runs sequentially or chunked over 1, 2 or 8
// workers.
func TestEstimatorsParallelBitIdentical(t *testing.T) {
	const n = 5000
	tr, np, model := determinismTrace(n)

	type variant struct {
		name string
		run  func() (Estimate, error)
	}
	variants := []variant{
		{"DM", func() (Estimate, error) { return DirectMethod(tr, np, model) }},
		{"IPS", func() (Estimate, error) { return IPS(tr, np, IPSOptions{}) }},
		{"IPS clip", func() (Estimate, error) { return IPS(tr, np, IPSOptions{Clip: 3}) }},
		{"SNIPS", func() (Estimate, error) { return IPS(tr, np, IPSOptions{SelfNormalize: true}) }},
		{"DR", func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{}) }},
		{"DR clip+norm", func() (Estimate, error) {
			return DoublyRobust(tr, np, model, DROptions{Clip: 3, SelfNormalize: true})
		}},
	}
	for _, v := range variants {
		// Reference: forced-sequential (threshold above the trace size).
		var want Estimate
		withParallelism(t, 1, n+1, func() {
			var err error
			want, err = v.run()
			if err != nil {
				t.Fatalf("%s sequential: %v", v.name, err)
			}
		})
		for _, w := range workerCounts {
			withParallelism(t, w, 64, func() {
				got, err := v.run()
				if err != nil {
					t.Fatalf("%s workers=%d: %v", v.name, w, err)
				}
				if got != want {
					t.Fatalf("%s workers=%d: %+v != sequential %+v", v.name, w, got, want)
				}
			})
		}
	}
}

// TestEstimatorErrorsDeterministicParallel asserts the parallel path
// reports the same first-failing-record error as the sequential scan.
func TestEstimatorErrorsDeterministicParallel(t *testing.T) {
	const n = 2000
	tr, _, model := determinismTrace(n)
	// A policy whose distribution is invalid for contexts in the upper
	// half of [0,1]; the first offending record index is fixed by the
	// trace, not by scheduling.
	bad := FuncPolicy[float64, int](func(x float64) []Weighted[int] {
		if x > 0.5 {
			return []Weighted[int]{{Decision: 0, Prob: 0.7}, {Decision: 1, Prob: 0.7}}
		}
		return []Weighted[int]{{Decision: 0, Prob: 1}, {Decision: 1, Prob: 0}, {Decision: 2, Prob: 0}}
	})
	var want string
	withParallelism(t, 1, n+1, func() {
		_, err := DoublyRobust(tr, bad, model, DROptions{})
		if err == nil {
			t.Fatal("sequential DR accepted an invalid policy")
		}
		want = err.Error()
	})
	if !strings.Contains(want, "record ") {
		t.Fatalf("unexpected error shape: %s", want)
	}
	for _, w := range workerCounts {
		withParallelism(t, w, 64, func() {
			_, err := DoublyRobust(tr, bad, model, DROptions{})
			if err == nil || err.Error() != want {
				t.Fatalf("workers=%d: error %v, want %s", w, err, want)
			}
			_, err = DirectMethod(tr, bad, model)
			if err == nil || err.Error() != want {
				t.Fatalf("DM workers=%d: error %v, want %s", w, err, want)
			}
		})
	}
}

// TestBootstrapSeededBitIdentical asserts the sharded bootstrap CI is a
// pure function of the seed: identical for worker counts 1, 2 and 8.
func TestBootstrapSeededBitIdentical(t *testing.T) {
	tr, np, model := determinismTrace(400)
	est := func(tt Trace[float64, int]) (Estimate, error) {
		return DoublyRobust(tt, np, model, DROptions{})
	}
	var want Interval
	withParallelism(t, 1, 1<<30, func() {
		var err error
		want, err = BootstrapSeeded(tr, est, 99, 150, 0.95)
		if err != nil {
			t.Fatal(err)
		}
	})
	if want.Lo >= want.Hi {
		t.Fatalf("degenerate interval %+v", want)
	}
	for _, w := range workerCounts {
		withParallelism(t, w, 1<<30, func() {
			got, err := BootstrapSeeded(tr, est, 99, 150, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("workers=%d: %+v != %+v", w, got, want)
			}
		})
	}
}

// TestBootstrapSeededValidation mirrors Bootstrap's input checks.
func TestBootstrapSeededValidation(t *testing.T) {
	tr, np, model := determinismTrace(50)
	est := func(tt Trace[float64, int]) (Estimate, error) {
		return DoublyRobust(tt, np, model, DROptions{})
	}
	if _, err := BootstrapSeeded(Trace[float64, int]{}, est, 1, 10, 0.95); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := BootstrapSeeded(tr, est, 1, 10, 1.5); err == nil {
		t.Fatal("bad level accepted")
	}
	// An estimator that always fails must surface its error.
	alwaysFail := func(Trace[float64, int]) (Estimate, error) {
		return Estimate{}, ErrNoMatches
	}
	if _, err := BootstrapSeeded(tr, alwaysFail, 1, 10, 0.95); err == nil {
		t.Fatal("all-failing estimator accepted")
	}
}

// TestBootstrapSeededStatsSkipped asserts the skipped-resample count is
// (a) reported, (b) excluded from the interval, and (c) as deterministic
// as the interval itself — identical at worker counts 1, 2 and 8.
func TestBootstrapSeededStatsSkipped(t *testing.T) {
	tr, np, model := determinismTrace(50)
	// Fail on a deterministic property of the resample (contexts are
	// uniform on [0,1), so this rejects roughly half the 120 shard
	// streams — a known subset for any fixed seed).
	flaky := func(tt Trace[float64, int]) (Estimate, error) {
		if tt[0].Context > 0.5 {
			return Estimate{}, ErrNoMatches
		}
		return DoublyRobust(tt, np, model, DROptions{})
	}
	var wantIv Interval
	var want BootstrapStats
	withParallelism(t, 1, 1<<30, func() {
		var err error
		wantIv, want, err = BootstrapSeededStats(tr, flaky, 7, 120, 0.9)
		if err != nil {
			t.Fatal(err)
		}
	})
	if want.Resamples != 120 {
		t.Fatalf("Resamples = %d, want 120", want.Resamples)
	}
	if want.Skipped == 0 || want.Skipped >= want.Resamples {
		t.Fatalf("implausible Skipped = %d (flaky estimator should fail some but not all resamples)", want.Skipped)
	}
	for _, w := range workerCounts {
		withParallelism(t, w, 1<<30, func() {
			iv, stats, err := BootstrapSeededStats(tr, flaky, 7, 120, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			if iv != wantIv || stats != want {
				t.Fatalf("workers=%d: (%+v, %+v) != (%+v, %+v)", w, iv, stats, wantIv, want)
			}
		})
	}
	// The wrapper must agree with the stats variant.
	iv, err := BootstrapSeeded(tr, flaky, 7, 120, 0.9)
	if err != nil || iv != wantIv {
		t.Fatalf("BootstrapSeeded disagrees: %+v, %v", iv, err)
	}
	// All-failing runs still report their stats.
	alwaysFail := func(Trace[float64, int]) (Estimate, error) {
		return Estimate{}, ErrNoMatches
	}
	_, stats, err := BootstrapSeededStats(tr, alwaysFail, 1, 10, 0.95)
	if err == nil {
		t.Fatal("all-failing estimator accepted")
	}
	if stats.Skipped != 10 || stats.Resamples != 10 {
		t.Fatalf("all-failing stats = %+v", stats)
	}
}
