package core

import (
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestSwitchDREqualsDRWithHugeTau(t *testing.T) {
	b := newTestBandit(71, 0.1)
	tr, _ := collectBanditTrace(b, 800, 0.4)
	np := banditNewPolicy(0.2)
	model := RewardFunc[float64, int](b.trueReward)
	sw, err := SwitchDR(tr, np, model, SwitchOptions{Tau: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DoublyRobust(tr, np, model, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sw.Value-dr.Value) > 1e-12 {
		t.Fatalf("SwitchDR(tau=inf) %g != DR %g", sw.Value, dr.Value)
	}
}

func TestSwitchDREqualsDMWithTinyTau(t *testing.T) {
	b := newTestBandit(72, 0.1)
	tr, _ := collectBanditTrace(b, 400, 0.4)
	np := banditNewPolicy(0.2)
	model := ConstantModel[float64, int]{Value: 3}
	sw, err := SwitchDR(tr, np, model, SwitchOptions{Tau: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := DirectMethod(tr, np, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sw.Value-dm.Value) > 1e-12 {
		t.Fatalf("SwitchDR(tau~0) %g != DM %g", sw.Value, dm.Value)
	}
}

func TestSwitchDRVarianceBetweenDMAndDR(t *testing.T) {
	// With a decent model and low-randomness logging, SwitchDR's
	// variance should sit below plain DR's.
	np := banditNewPolicy(0.05)
	model := RewardFunc[float64, int](func(c float64, d int) float64 {
		return c*float64(d+1) + 0.15
	})
	var drVals, swVals []float64
	for run := 0; run < 40; run++ {
		b := newTestBandit(int64(900+run), 0.3)
		tr, _ := collectBanditTrace(b, 300, 0.06)
		dr, err := DoublyRobust(tr, np, model, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		sw, err := SwitchDR(tr, np, model, SwitchOptions{Tau: 5})
		if err != nil {
			t.Fatal(err)
		}
		drVals = append(drVals, dr.Value)
		swVals = append(swVals, sw.Value)
	}
	if mathx.Variance(swVals) >= mathx.Variance(drVals) {
		t.Fatalf("SwitchDR variance %g should be below DR %g in the low-randomness regime",
			mathx.Variance(swVals), mathx.Variance(drVals))
	}
}

func TestSwitchDRDefaultTau(t *testing.T) {
	b := newTestBandit(73, 0.1)
	tr, _ := collectBanditTrace(b, 500, 0.2)
	np := banditNewPolicy(0.1)
	sw, err := SwitchDR(tr, np, RewardFunc[float64, int](b.trueReward), SwitchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.N != 500 {
		t.Fatalf("N = %d", sw.N)
	}
}

func TestSwitchDRErrors(t *testing.T) {
	np := banditNewPolicy(0.1)
	model := ConstantModel[float64, int]{}
	if _, err := SwitchDR(Trace[float64, int]{}, np, model, SwitchOptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	bad := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: 0}}
	if _, err := SwitchDR(bad, np, model, SwitchOptions{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestStreamingDRMatchesBatch(t *testing.T) {
	b := newTestBandit(74, 0.1)
	tr, _ := collectBanditTrace(b, 700, 0.4)
	np := banditNewPolicy(0.2)
	model := RewardFunc[float64, int](b.trueReward)
	s := NewStreamingDR(np, model)
	for _, rec := range tr {
		if err := s.Offer(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := DoublyRobust(tr, np, model, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-want.Value) > 1e-9 {
		t.Fatalf("streaming %g != batch %g", got.Value, want.Value)
	}
	if math.Abs(got.StdErr-want.StdErr) > 1e-9 {
		t.Fatalf("streaming stderr %g != batch %g", got.StdErr, want.StdErr)
	}
	if math.Abs(got.ESS-want.ESS) > 1e-6 {
		t.Fatalf("streaming ESS %g != batch %g", got.ESS, want.ESS)
	}
	if got.N != want.N || s.N() != len(tr) {
		t.Fatal("record accounting mismatch")
	}
}

func TestStreamingDRRejectsBadRecords(t *testing.T) {
	np := banditNewPolicy(0.2)
	s := NewStreamingDR(np, ConstantModel[float64, int]{})
	if err := s.Offer(Record[float64, int]{Propensity: 0}); err == nil {
		t.Fatal("expected rejection")
	}
	if s.Rejected() != 1 || s.N() != 0 {
		t.Fatal("rejection accounting broken")
	}
	if _, err := s.Estimate(); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace before any accepted record")
	}
	// A bad policy distribution also rejects.
	bad := NewStreamingDR[float64, int](FuncPolicy[float64, int](func(float64) []Weighted[int] {
		return []Weighted[int]{{Decision: 0, Prob: 0.2}}
	}), ConstantModel[float64, int]{})
	if err := bad.Offer(Record[float64, int]{Propensity: 0.5}); err == nil {
		t.Fatal("expected distribution rejection")
	}
}

func TestStreamingDRIncremental(t *testing.T) {
	// The estimate must be queryable mid-stream and converge.
	b := newTestBandit(75, 0.05)
	tr, ctxs := collectBanditTrace(b, 2000, 0.5)
	np := banditNewPolicy(0.2)
	model := RewardFunc[float64, int](b.trueReward)
	truth := TrueValue(ctxs, np, b.trueReward)
	s := NewStreamingDR(np, model)
	var at100, at2000 float64
	for i, rec := range tr {
		if err := s.Offer(rec); err != nil {
			t.Fatal(err)
		}
		if i == 99 {
			est, err := s.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			at100 = math.Abs(est.Value - truth)
		}
	}
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	at2000 = math.Abs(est.Value - truth)
	if at2000 > at100+0.02 {
		t.Fatalf("estimate did not improve with data: |err| %g -> %g", at100, at2000)
	}
}
