package core

import (
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
)

// testBandit is a synthetic contextual bandit with known ground truth:
// contexts are scalars in [0,1], decisions are {0,1,2}, and the true
// expected reward is r(c,d) = c*(d+1). Noise is additive Gaussian.
type testBandit struct {
	rng   *mathx.RNG
	noise float64
}

func newTestBandit(seed int64, noise float64) *testBandit {
	return &testBandit{rng: mathx.NewRNG(seed), noise: noise}
}

func (b *testBandit) trueReward(c float64, d int) float64 { return c * float64(d+1) }

func (b *testBandit) drawReward(c float64, d int) float64 {
	return b.trueReward(c, d) + b.rng.Normal(0, b.noise)
}

func (b *testBandit) contexts(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = b.rng.Float64()
	}
	return out
}

var banditDecisions = []int{0, 1, 2}

func banditOldPolicy(eps float64) Policy[float64, int] {
	return EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: banditDecisions,
		Epsilon:   eps,
	}
}

func banditNewPolicy(eps float64) Policy[float64, int] {
	return EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: banditDecisions,
		Epsilon:   eps,
	}
}

func collectBanditTrace(b *testBandit, n int, oldEps float64) (Trace[float64, int], []float64) {
	ctxs := b.contexts(n)
	tr := CollectTrace(ctxs, banditOldPolicy(oldEps), b.drawReward, b.rng)
	return tr, ctxs
}

func TestEmptyTraceErrors(t *testing.T) {
	var tr Trace[float64, int]
	np := banditNewPolicy(0.1)
	model := ConstantModel[float64, int]{}
	if _, err := DirectMethod(tr, np, model); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("DM should reject empty trace")
	}
	if _, err := IPS(tr, np, IPSOptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("IPS should reject empty trace")
	}
	if _, err := DoublyRobust(tr, np, model, DROptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("DR should reject empty trace")
	}
	if _, err := MatchedRewards(tr, np); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("MatchedRewards should reject empty trace")
	}
}

func TestInvalidPropensityRejected(t *testing.T) {
	tr := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: 0}}
	if _, err := IPS(tr, banditNewPolicy(0.1), IPSOptions{}); err == nil {
		t.Fatal("IPS should reject zero propensity")
	}
	tr[0].Propensity = 1.5
	if _, err := DoublyRobust(tr, banditNewPolicy(0.1), ConstantModel[float64, int]{}, DROptions{}); err == nil {
		t.Fatal("DR should reject propensity > 1")
	}
	tr[0].Propensity = 0.5
	tr[0].Reward = math.NaN()
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate should reject NaN reward")
	}
}

func TestDMExactWithTrueModel(t *testing.T) {
	b := newTestBandit(1, 0)
	tr, ctxs := collectBanditTrace(b, 2000, 0.3)
	np := banditNewPolicy(0.1)
	model := RewardFunc[float64, int](b.trueReward)
	est, err := DirectMethod(tr, np, model)
	if err != nil {
		t.Fatal(err)
	}
	truth := TrueValue(ctxs, np, b.trueReward)
	if math.Abs(est.Value-truth) > 1e-12 {
		t.Fatalf("DM with true model = %g, truth = %g", est.Value, truth)
	}
	if est.ESS != float64(est.N) {
		t.Fatal("DM ESS should equal N")
	}
}

func TestDMBiasedWithWrongModel(t *testing.T) {
	b := newTestBandit(2, 0)
	tr, ctxs := collectBanditTrace(b, 2000, 0.3)
	np := banditNewPolicy(0.1)
	truth := TrueValue(ctxs, np, b.trueReward)
	est, err := DirectMethod(tr, np, ConstantModel[float64, int]{Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth) < 0.5 {
		t.Fatalf("constant model should be badly biased: est %g vs truth %g", est.Value, truth)
	}
}

func TestIPSUnbiased(t *testing.T) {
	// Average IPS over many small traces: should converge to the truth.
	np := banditNewPolicy(0.1)
	var estimates []float64
	var truths []float64
	for run := 0; run < 60; run++ {
		b := newTestBandit(int64(100+run), 0.1)
		tr, ctxs := collectBanditTrace(b, 500, 0.5)
		est, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, est.Value)
		truths = append(truths, TrueValue(ctxs, np, b.trueReward))
	}
	if d := math.Abs(mathx.Mean(estimates) - mathx.Mean(truths)); d > 0.03 {
		t.Fatalf("IPS bias %g too large", d)
	}
}

func TestIPSHighVarianceUnderLowRandomness(t *testing.T) {
	// §4.1: as the old policy's exploration shrinks, IPS variance grows.
	np := banditNewPolicy(0.05)
	variance := func(oldEps float64) float64 {
		var vals []float64
		for run := 0; run < 40; run++ {
			b := newTestBandit(int64(1000+run), 0.1)
			tr, _ := collectBanditTrace(b, 300, oldEps)
			est, err := IPS(tr, np, IPSOptions{})
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, est.Value)
		}
		return mathx.Variance(vals)
	}
	vHigh := variance(0.9) // lots of exploration
	vLow := variance(0.03) // nearly deterministic old policy
	if vLow <= vHigh {
		t.Fatalf("expected variance to grow as exploration shrinks: v(0.03)=%g <= v(0.9)=%g", vLow, vHigh)
	}
}

func TestIPSClippingReducesMaxWeight(t *testing.T) {
	b := newTestBandit(3, 0.1)
	tr, _ := collectBanditTrace(b, 500, 0.05)
	np := banditNewPolicy(0.05)
	unclipped, err := IPS(tr, np, IPSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clipped, err := IPS(tr, np, IPSOptions{Clip: 2})
	if err != nil {
		t.Fatal(err)
	}
	if unclipped.MaxWeight <= 2 {
		t.Skip("trace did not produce large weights")
	}
	if clipped.MaxWeight > 2 {
		t.Fatalf("clipped max weight = %g, want <= 2", clipped.MaxWeight)
	}
	if clipped.ESS < unclipped.ESS {
		t.Fatalf("clipping should not reduce ESS: %g < %g", clipped.ESS, unclipped.ESS)
	}
}

func TestSNIPSWithinRewardRange(t *testing.T) {
	// Self-normalized IPS is a convex combination of observed rewards,
	// so it can never leave their range — unlike plain IPS.
	b := newTestBandit(4, 0.1)
	tr, _ := collectBanditTrace(b, 200, 0.05)
	np := banditNewPolicy(0.05)
	est, err := IPS(tr, np, IPSOptions{SelfNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	min, max := mathx.MinMax(tr.Rewards())
	if est.Value < min-1e-9 || est.Value > max+1e-9 {
		t.Fatalf("SNIPS %g outside reward range [%g, %g]", est.Value, min, max)
	}
}

func TestDRExactWhenModelExact(t *testing.T) {
	// Special case 2 from §3: with the true reward model, residuals
	// vanish in expectation and DR ≈ DM = truth.
	b := newTestBandit(5, 0)
	tr, ctxs := collectBanditTrace(b, 2000, 0.3)
	np := banditNewPolicy(0.1)
	model := RewardFunc[float64, int](b.trueReward)
	est, err := DoublyRobust(tr, np, model, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := TrueValue(ctxs, np, b.trueReward)
	// Noise-free: residual r_k - r̂ = 0 exactly, so DR = DM = truth.
	if math.Abs(est.Value-truth) > 1e-12 {
		t.Fatalf("DR with exact model = %g, truth %g", est.Value, truth)
	}
}

func TestDREqualsIPSWhenPoliciesAgree(t *testing.T) {
	// Special case 1 from §3: when old and new policies put the same
	// probability on logged decisions, the model contributions cancel
	// only for the logged decision; with a deterministic shared policy,
	// DR = IPS exactly.
	b := newTestBandit(6, 0.1)
	shared := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 1 }}
	ctxs := b.contexts(300)
	tr := CollectTrace(ctxs, shared, b.drawReward, b.rng)
	model := ConstantModel[float64, int]{Value: 42} // arbitrary, should cancel
	dr, err := DoublyRobust(tr, shared, model, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	ips, err := IPS(tr, shared, IPSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dr.Value-ips.Value) > 1e-9 {
		t.Fatalf("DR %g != IPS %g for identical deterministic policies", dr.Value, ips.Value)
	}
}

func TestDRRobustToWrongModel(t *testing.T) {
	// Double robustness leg 1: propensities right, model wrong →
	// still consistent.
	np := banditNewPolicy(0.1)
	var errs []float64
	for run := 0; run < 40; run++ {
		b := newTestBandit(int64(200+run), 0.1)
		tr, ctxs := collectBanditTrace(b, 800, 0.5)
		est, err := DoublyRobust(tr, np, ConstantModel[float64, int]{Value: -3}, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, est.Value-TrueValue(ctxs, np, b.trueReward))
	}
	if bias := math.Abs(mathx.Mean(errs)); bias > 0.05 {
		t.Fatalf("DR bias with wrong model = %g, want ~0", bias)
	}
}

func TestDRRobustToWrongPropensities(t *testing.T) {
	// Double robustness leg 2: model right, propensities wrong →
	// still consistent (residuals are centred at zero).
	np := banditNewPolicy(0.1)
	var errs []float64
	for run := 0; run < 40; run++ {
		b := newTestBandit(int64(300+run), 0.1)
		tr, ctxs := collectBanditTrace(b, 800, 0.5)
		for i := range tr {
			tr[i].Propensity = mathx.Clamp(tr[i].Propensity*2.5, 0.01, 1) // corrupt
		}
		est, err := DoublyRobust(tr, np, RewardFunc[float64, int](func(c float64, d int) float64 {
			return c * float64(d+1)
		}), DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, est.Value-TrueValue(ctxs, np, b.trueReward))
	}
	if bias := math.Abs(mathx.Mean(errs)); bias > 0.05 {
		t.Fatalf("DR bias with wrong propensities = %g, want ~0", bias)
	}
}

func TestDRBeatsDMAndIPSWithNoisyModel(t *testing.T) {
	// The headline claim: with a slightly wrong model AND a valid trace,
	// DR's RMSE beats both a biased DM and a high-variance IPS.
	np := banditNewPolicy(0.05)
	biasedModel := RewardFunc[float64, int](func(c float64, d int) float64 {
		return c*float64(d+1) + 0.4 // systematic offset
	})
	var dmErr, ipsErr, drErr []float64
	for run := 0; run < 50; run++ {
		b := newTestBandit(int64(400+run), 0.3)
		tr, ctxs := collectBanditTrace(b, 250, 0.15)
		truth := TrueValue(ctxs, np, b.trueReward)
		dm, err := DirectMethod(tr, np, biasedModel)
		if err != nil {
			t.Fatal(err)
		}
		ips, err := IPS(tr, np, IPSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dr, err := DoublyRobust(tr, np, biasedModel, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		dmErr = append(dmErr, (dm.Value-truth)*(dm.Value-truth))
		ipsErr = append(ipsErr, (ips.Value-truth)*(ips.Value-truth))
		drErr = append(drErr, (dr.Value-truth)*(dr.Value-truth))
	}
	dmMSE, ipsMSE, drMSE := mathx.Mean(dmErr), mathx.Mean(ipsErr), mathx.Mean(drErr)
	if drMSE >= dmMSE {
		t.Fatalf("DR MSE %g should beat biased DM MSE %g", drMSE, dmMSE)
	}
	if drMSE >= ipsMSE {
		t.Fatalf("DR MSE %g should beat IPS MSE %g", drMSE, ipsMSE)
	}
}

func TestMatchedRewards(t *testing.T) {
	b := newTestBandit(7, 0)
	tr, _ := collectBanditTrace(b, 400, 1.0) // uniform logging
	np := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 2 }}
	est, err := MatchedRewards(tr, np)
	if err != nil {
		t.Fatal(err)
	}
	// Only ~1/3 of records match.
	if est.N < 80 || est.N > 200 {
		t.Fatalf("matched %d records, want ~133", est.N)
	}
	// Matched mean should approximate E[2x * ... ] with d=2: E[3c] = 1.5.
	if math.Abs(est.Value-1.5) > 0.15 {
		t.Fatalf("matched value %g, want ~1.5", est.Value)
	}
	// A new policy that picks a decision the old never logged.
	never := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 9 }}
	if _, err := MatchedRewards(tr, never); !errors.Is(err, ErrNoMatches) {
		t.Fatal("expected ErrNoMatches")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Value: 1, StdErr: 0.1, N: 10, ESS: 9.5}
	if e.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDMDistributionValidation(t *testing.T) {
	tr := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: 1}}
	bad := FuncPolicy[float64, int](func(float64) []Weighted[int] {
		return []Weighted[int]{{Decision: 0, Prob: 0.4}} // sums to 0.4
	})
	if _, err := DirectMethod(tr, bad, ConstantModel[float64, int]{}); err == nil {
		t.Fatal("DM should reject an improper distribution")
	}
	if _, err := DoublyRobust(tr, bad, ConstantModel[float64, int]{}, DROptions{}); err == nil {
		t.Fatal("DR should reject an improper distribution")
	}
}
