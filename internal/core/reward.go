package core

import "context"

// RewardModel predicts the reward r̂(c, d) of taking decision d for
// context c. It is the ingredient of the Direct Method and the control
// variate inside the Doubly Robust estimator.
type RewardModel[C any, D comparable] interface {
	Predict(c C, d D) float64
}

// RewardFunc adapts a plain function into a RewardModel.
type RewardFunc[C any, D comparable] func(c C, d D) float64

// Predict implements RewardModel.
func (f RewardFunc[C, D]) Predict(c C, d D) float64 { return f(c, d) }

// ConstantModel predicts the same reward everywhere. A useful worst-case
// (fully misspecified) reward model in tests and ablations: with it, DR
// degrades gracefully to (roughly) IPS.
type ConstantModel[C any, D comparable] struct {
	Value float64
}

// Predict implements RewardModel.
func (m ConstantModel[C, D]) Predict(C, D) float64 { return m.Value }

// TableModel predicts by lookup on a caller-supplied key derived from
// (context, decision), falling back to a default for unseen keys. FitTable
// builds one from a trace by averaging observed rewards per key — the
// simplest data-driven Direct Method model.
type TableModel[C any, D comparable] struct {
	Key     func(c C, d D) string
	Values  map[string]float64
	Default float64
}

// Predict implements RewardModel.
func (m *TableModel[C, D]) Predict(c C, d D) float64 {
	if v, ok := m.Values[m.Key(c, d)]; ok {
		return v
	}
	return m.Default
}

// FitTable estimates a TableModel from a trace by averaging rewards that
// share a key. The default for unseen keys is the global mean reward.
func FitTable[C any, D comparable](t Trace[C, D], key func(c C, d D) string) *TableModel[C, D] {
	// Background never cancels, so the error branch is unreachable.
	m, _ := FitTableCtx(context.Background(), t, key)
	return m
}

// FitTableCtx is FitTable with cooperative cancellation: ctx is checked
// once per chunk of records, so a cancelled ctx stops the fit within
// one chunk boundary and returns ctx's error instead of a model.
func FitTableCtx[C any, D comparable](ctx context.Context, t Trace[C, D], key func(c C, d D) string) (*TableModel[C, D], error) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		k := key(rec.Context, rec.Decision)
		sums[k] += rec.Reward
		counts[k]++
	}
	vals := make(map[string]float64, len(sums))
	for k, s := range sums {
		vals[k] = s / float64(counts[k])
	}
	return &TableModel[C, D]{Key: key, Values: vals, Default: t.MeanReward()}, nil
}
