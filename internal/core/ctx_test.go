package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// ctxTestTrace builds a moderately sized randomized trace, mirroring
// the world used by the determinism tests.
func ctxTestTrace(n int) (Trace[float64, int], Policy[float64, int]) {
	rng := mathx.NewRNG(5)
	old := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	ctxs := make([]float64, n)
	for i := range ctxs {
		ctxs[i] = float64(rng.Intn(4))
	}
	tr := CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return x + float64(d) + rng.Normal(0, 0.05)
	}, rng)
	np := EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.1,
	}
	return tr, np
}

// TestEstimatorCtxVariantsMatchPlain: with a live context the Ctx
// variants must be bit-identical to their plain counterparts, on both
// the sequential and the pool path.
func TestEstimatorCtxVariantsMatchPlain(t *testing.T) {
	tr, pol := ctxTestTrace(600)
	model := FitTable(tr, func(c float64, d int) string {
		return string(rune('0' + d))
	})
	for _, threshold := range []int{1, 100000} {
		old := ParallelThreshold
		ParallelThreshold = threshold
		ctx := context.Background()
		dm1, err1 := DirectMethod(tr, pol, model)
		dm2, err2 := DirectMethodCtx(ctx, tr, pol, model)
		if err1 != nil || err2 != nil || dm1 != dm2 {
			t.Fatalf("threshold=%d: DM diverged: %+v/%v vs %+v/%v", threshold, dm1, err1, dm2, err2)
		}
		ips1, err1 := IPS(tr, pol, IPSOptions{Clip: 5})
		ips2, err2 := IPSCtx(ctx, tr, pol, IPSOptions{Clip: 5})
		if err1 != nil || err2 != nil || ips1 != ips2 {
			t.Fatalf("threshold=%d: IPS diverged", threshold)
		}
		dr1, err1 := DoublyRobust(tr, pol, model, DROptions{})
		dr2, err2 := DoublyRobustCtx(ctx, tr, pol, model, DROptions{})
		if err1 != nil || err2 != nil || dr1 != dr2 {
			t.Fatalf("threshold=%d: DR diverged", threshold)
		}
		d1, err1 := Diagnose(tr, pol)
		d2, err2 := DiagnoseCtx(ctx, tr, pol)
		if err1 != nil || err2 != nil || d1 != d2 {
			t.Fatalf("threshold=%d: Diagnose diverged", threshold)
		}
		ParallelThreshold = old
	}
}

// TestEstimatorCtxCancelled: a cancelled context fails every ctx-aware
// entry point with context.Canceled, on both scheduling paths.
func TestEstimatorCtxCancelled(t *testing.T) {
	tr, pol := ctxTestTrace(600)
	model := FitTable(tr, func(c float64, d int) string {
		return string(rune('0' + d))
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, threshold := range []int{1, 100000} {
		old := ParallelThreshold
		ParallelThreshold = threshold
		if _, err := DirectMethodCtx(ctx, tr, pol, model); !errors.Is(err, context.Canceled) {
			t.Fatalf("threshold=%d: DM: %v", threshold, err)
		}
		if _, err := IPSCtx(ctx, tr, pol, IPSOptions{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("threshold=%d: IPS: %v", threshold, err)
		}
		if _, err := DoublyRobustCtx(ctx, tr, pol, model, DROptions{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("threshold=%d: DR: %v", threshold, err)
		}
		if _, err := DiagnoseCtx(ctx, tr, pol); !errors.Is(err, context.Canceled) {
			t.Fatalf("threshold=%d: Diagnose: %v", threshold, err)
		}
		ParallelThreshold = old
	}
}

// TestBootstrapSeededStatsCtxMatchesPlain: the ctx-aware bootstrap with
// a live context returns the identical interval and stats at every
// worker count.
func TestBootstrapSeededStatsCtxMatchesPlain(t *testing.T) {
	tr, pol := ctxTestTrace(300)
	est := func(t Trace[float64, int]) (Estimate, error) {
		return IPS(t, pol, IPSOptions{Clip: 10})
	}
	wantIv, wantStats, err := BootstrapSeededStats(tr, est, 21, 120, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetDefaultWorkers(0)
	for _, w := range []int{1, 2, 8} {
		parallel.SetDefaultWorkers(w)
		iv, stats, err := BootstrapSeededStatsCtx(context.Background(), tr, est, 21, 120, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv != wantIv || stats != wantStats {
			t.Fatalf("workers=%d: ctx bootstrap diverged: %+v/%+v vs %+v/%+v", w, iv, stats, wantIv, wantStats)
		}
	}
}

// TestBootstrapSeededStatsCtxCancelled: cancellation surfaces as the
// ctx error, not as a half-built interval.
func TestBootstrapSeededStatsCtxCancelled(t *testing.T) {
	tr, pol := ctxTestTrace(300)
	est := func(t Trace[float64, int]) (Estimate, error) {
		return IPS(t, pol, IPSOptions{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	iv, stats, err := BootstrapSeededStatsCtx(ctx, tr, est, 21, 120, 0.95)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if iv != (Interval{}) || stats != (BootstrapStats{}) {
		t.Fatalf("non-zero results on cancellation: %+v %+v", iv, stats)
	}
}

// TestValidateRejectsNaNAndInf pins the hardened trace validation: NaN
// propensities and infinite rewards must fail, not flow into weights.
func TestValidateRejectsNaNAndInf(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	good := Record[float64, int]{Context: 1, Decision: 0, Reward: 1, Propensity: 0.5}
	cases := []struct {
		name string
		rec  Record[float64, int]
	}{
		{"NaN propensity", Record[float64, int]{Context: 1, Decision: 0, Reward: 1, Propensity: nan}},
		{"Inf reward", Record[float64, int]{Context: 1, Decision: 0, Reward: inf, Propensity: 0.5}},
		{"-Inf reward", Record[float64, int]{Context: 1, Decision: 0, Reward: -inf, Propensity: 0.5}},
	}
	for _, c := range cases {
		tr := Trace[float64, int]{good, c.rec}
		if err := tr.Validate(); err == nil {
			t.Fatalf("%s passed validation", c.name)
		}
	}
	if err := (Trace[float64, int]{good}).Validate(); err != nil {
		t.Fatalf("healthy record rejected: %v", err)
	}
}
