package core

import (
	"math"
	"strconv"
	"testing"

	"drnet/internal/mathx"
)

// fuzzTrace builds a deterministic valid base trace from seed, then
// overwrites record mutIdx%n with the fuzzer-chosen propensity and
// reward bit patterns — so the fuzzer explores the full float64 space
// (NaN, ±Inf, subnormals, -0, out-of-range) at an arbitrary position.
func fuzzTrace(seed int64, n uint16, mutIdx uint16, propBits, rewBits uint64) Trace[float64, int] {
	size := 1 + int(n)%256
	rng := mathx.NewRNG(seed)
	tr := make(Trace[float64, int], size)
	for i := range tr {
		tr[i] = Record[float64, int]{
			// Snap contexts to a grid so interning shares codes.
			Context:    float64(rng.Intn(7)) / 7,
			Decision:   rng.Intn(3),
			Reward:     rng.Normal(0, 1),
			Propensity: 0.05 + 0.95*rng.Float64(),
		}
	}
	i := int(mutIdx) % size
	tr[i].Propensity = math.Float64frombits(propBits)
	tr[i].Reward = math.Float64frombits(rewBits)
	return tr
}

// FuzzNewTraceView locks down two properties of the constructor:
//
//  1. Validation parity — NewTraceView accepts exactly the traces
//     Trace.Validate accepts, and rejects with the identical error
//     (same record index, same message) otherwise: NaN/Inf rewards and
//     propensities outside (0,1] (including NaN) must be rejected.
//  2. Interning round-trip — on accepted traces, the view's columns
//     plus dictionaries reconstruct the trace record-for-record, the
//     dictionaries are minimal and in first-occurrence order, and the
//     keyed constructor agrees with the comparable one.
func FuzzNewTraceView(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(5), uint64(0x3FE0000000000000), uint64(0x3FF0000000000000)) // valid: p=0.5, r=1
	f.Add(int64(2), uint16(50), uint16(0), uint64(0x7FF8000000000000), uint64(0))                   // NaN propensity at record 0
	f.Add(int64(3), uint16(80), uint16(79), uint64(0x3FF0000000000000), uint64(0x7FF8000000000000)) // NaN reward at last record
	f.Add(int64(4), uint16(40), uint16(7), uint64(0), uint64(0x3FE0000000000000))                   // zero propensity
	f.Add(int64(5), uint16(40), uint16(7), uint64(0x4000000000000000), uint64(0))                   // propensity 2 > 1
	f.Add(int64(6), uint16(60), uint16(30), uint64(0x3FF0000000000000), uint64(0x7FF0000000000000)) // +Inf reward
	f.Add(int64(7), uint16(60), uint16(30), uint64(0x8000000000000000), uint64(0))                  // propensity -0
	f.Fuzz(func(t *testing.T, seed int64, n uint16, mutIdx uint16, propBits, rewBits uint64) {
		tr := fuzzTrace(seed, n, mutIdx, propBits, rewBits)
		wantErr := tr.Validate()
		v, gotErr := NewTraceView(tr)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("validation parity: Trace.Validate=%v NewTraceView=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error text: NewTraceView %q != Trace.Validate %q", gotErr.Error(), wantErr.Error())
			}
			return
		}
		// Round-trip: columns + dictionaries reconstruct the trace.
		back := v.Materialize()
		if len(back) != len(tr) {
			t.Fatalf("materialize length %d != %d", len(back), len(tr))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("record %d: materialized %+v != original %+v", i, back[i], tr[i])
			}
		}
		// Dictionary minimality and first-occurrence order.
		seenC := map[float64]bool{}
		seenD := map[int]bool{}
		var wantCtxs []float64
		var wantDecs []int
		for _, rec := range tr {
			if !seenC[rec.Context] {
				seenC[rec.Context] = true
				wantCtxs = append(wantCtxs, rec.Context)
			}
			if !seenD[rec.Decision] {
				seenD[rec.Decision] = true
				wantDecs = append(wantDecs, rec.Decision)
			}
		}
		gotCtxs := v.UniqueContexts()
		if len(gotCtxs) != len(wantCtxs) {
			t.Fatalf("context dictionary size %d != %d", len(gotCtxs), len(wantCtxs))
		}
		for i := range wantCtxs {
			if gotCtxs[i] != wantCtxs[i] {
				t.Fatalf("context dictionary[%d] = %v, want %v (first-occurrence order)", i, gotCtxs[i], wantCtxs[i])
			}
		}
		gotDecs := v.UniqueDecisions()
		if len(gotDecs) != len(wantDecs) {
			t.Fatalf("decision dictionary size %d != %d", len(gotDecs), len(wantDecs))
		}
		for i := range wantDecs {
			if gotDecs[i] != wantDecs[i] {
				t.Fatalf("decision dictionary[%d] = %v, want %v (first-occurrence order)", i, gotDecs[i], wantDecs[i])
			}
		}
		// Keyed constructor with an injective key agrees column-for-column.
		kv, err := NewTraceViewKeyed(tr, func(c float64) string {
			return strconv.FormatFloat(c, 'g', -1, 64)
		})
		if err != nil {
			t.Fatalf("NewTraceViewKeyed on valid trace: %v", err)
		}
		if kv.NumContexts() != v.NumContexts() || kv.NumDecisions() != v.NumDecisions() {
			t.Fatalf("keyed dictionaries (%d,%d) != comparable (%d,%d)",
				kv.NumContexts(), kv.NumDecisions(), v.NumContexts(), v.NumDecisions())
		}
		kb := kv.Materialize()
		for i := range tr {
			if kb[i] != tr[i] {
				t.Fatalf("keyed record %d: %+v != %+v", i, kb[i], tr[i])
			}
		}
		if v.MeanReward() != tr.MeanReward() {
			t.Fatalf("MeanReward %v != %v", v.MeanReward(), tr.MeanReward())
		}
	})
}
