package core

import (
	"errors"
	"fmt"
	"math"
)

// Record is one logged interaction: the old policy observed context
// Context, chose Decision (with probability Propensity under the old
// policy), and the system returned Reward.
type Record[C any, D comparable] struct {
	Context  C
	Decision D
	Reward   float64
	// Propensity is µ_old(Decision | Context): the probability with
	// which the logging policy chose this decision. It must be in
	// (0, 1]. When it is unknown, use AttachPropensities or
	// EstimatePropensities before running IPS/DR.
	Propensity float64
}

// Trace is an ordered sequence of logged records, as collected while the
// old policy was serving clients.
type Trace[C any, D comparable] []Record[C, D]

// ErrEmptyTrace is returned by estimators invoked on a trace with no
// records.
var ErrEmptyTrace = errors.New("core: empty trace")

// Rewards returns the logged rewards in order.
func (t Trace[C, D]) Rewards() []float64 {
	out := make([]float64, len(t))
	for i, rec := range t {
		out[i] = rec.Reward
	}
	return out
}

// MeanReward returns the average logged reward (the on-policy value of
// the old policy).
func (t Trace[C, D]) MeanReward() float64 {
	if len(t) == 0 {
		return 0
	}
	s := 0.0
	for _, rec := range t {
		s += rec.Reward
	}
	return s / float64(len(t))
}

// Validate checks that every record has a usable propensity (in (0,1])
// and finite reward. Estimators that use propensities call this
// implicitly; it is exported so trace producers can fail fast.
func (t Trace[C, D]) Validate() error {
	for i, rec := range t {
		// The negated comparison also rejects NaN propensities, which
		// pass a plain range check and poison every weight downstream.
		if !(rec.Propensity > 0) || rec.Propensity > 1 {
			return fmt.Errorf("core: record %d has propensity %g, want (0,1]", i, rec.Propensity)
		}
		if math.IsNaN(rec.Reward) {
			return fmt.Errorf("core: record %d has NaN reward", i)
		}
		if math.IsInf(rec.Reward, 0) {
			return fmt.Errorf("core: record %d has infinite reward", i)
		}
	}
	return nil
}

// Split partitions the trace into two halves: the first frac (0<frac<1)
// of records and the remainder. It is used for sample-splitting — fitting
// the reward model on one part and estimating on the other — which keeps
// DR's favourable bias properties when the model is fit from the same
// trace.
func (t Trace[C, D]) Split(frac float64) (fit, eval Trace[C, D], err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("core: split fraction %g out of (0,1)", frac)
	}
	k := int(frac * float64(len(t)))
	if k == 0 || k == len(t) {
		return nil, nil, errors.New("core: split produced an empty part")
	}
	return t[:k], t[k:], nil
}

// DecisionCounts tallies how many times each decision appears in the
// trace.
func (t Trace[C, D]) DecisionCounts() map[D]int {
	out := make(map[D]int)
	for _, rec := range t {
		out[rec.Decision]++
	}
	return out
}
