package core

import "context"

// viewTables is the per-evaluation flattening of a Policy over a
// TraceView's context dictionary. Building it costs one
// Distribution call per UNIQUE context; afterwards the per-record hot
// loops are pure array arithmetic. All float values are the exact
// floats the slice path would compute per record (same Distribution
// results, consumed in the same order), which is what makes the *View
// estimators bit-identical to their Trace counterparts.
type viewTables[D comparable] struct {
	// k is the decision-dictionary size (row stride of the U×K tables).
	k int
	// probFirst[u*k+kc] is Prob(policy, context u, decision kc):
	// first-match semantics, 0 when the decision is outside the
	// distribution's support.
	probFirst []float64
	// probLast mirrors DiagnoseCtx's accumulation, where the LAST
	// matching entry wins.
	probLast []float64
	// argmax[u] is the decision code of the distribution's modal entry
	// (first maximum wins, as in the slice argmax), or -1 when that
	// decision never appears in the trace.
	argmax []int32
	// distOff/distProb/distCode/distDec flatten each context's
	// distribution with zero-probability entries dropped (the dm loops
	// skip them): entries for context u live at [distOff[u],
	// distOff[u+1]). distCode is -1 for decisions outside the
	// dictionary; distDec keeps the decision value so arbitrary reward
	// models can still be consulted.
	distOff  []int32
	distProb []float64
	distCode []int32
	distDec  []D
	// valErr[u] is ValidateDistribution's verdict for context u (nil
	// slice when every distribution is valid).
	valErr     []error
	anyInvalid bool

	pf, pl, dp         *[]float64
	am, off, dc, stamp *[]int32
}

// buildViewTables flattens newPolicy over v's context dictionary.
// Release with (*viewTables).release once no result aliases it.
func buildViewTables[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D]) *viewTables[D] {
	numCtx, k := len(v.contexts), len(v.decisions)
	tb := &viewTables[D]{k: k}
	tb.pf = getFloats(numCtx * k)
	tb.pl = getFloats(numCtx * k)
	tb.am = getInt32s(numCtx)
	tb.off = getInt32s(numCtx + 1)
	tb.dp = getFloats(0)
	tb.dc = getInt32s(0)
	tb.stamp = getInt32s(k)

	probFirst, probLast := *tb.pf, *tb.pl
	for i := range probFirst {
		probFirst[i] = 0
		probLast[i] = 0
	}
	// stamp[kc] == u marks "decision kc already seen for context u", so
	// first-match wins in probFirst without a per-context bool slice.
	stamp := *tb.stamp
	for i := range stamp {
		stamp[i] = -1
	}
	argmax := *tb.am
	off := *tb.off
	off[0] = 0
	distProb := (*tb.dp)[:0]
	distCode := (*tb.dc)[:0]
	var distDec []D

	for u := 0; u < numCtx; u++ {
		dist := newPolicy.Distribution(v.contexts[u])
		if err := ValidateDistribution(dist); err != nil {
			if tb.valErr == nil {
				//lint:allow hotalloc validation-failure path; allocated at most once per table build
				tb.valErr = make([]error, numCtx)
			}
			tb.valErr[u] = err
			tb.anyInvalid = true
		}
		row := u * k
		for _, w := range dist {
			kc, inDict := v.decIndex[w.Decision]
			if inDict {
				if stamp[kc] != int32(u) {
					stamp[kc] = int32(u)
					probFirst[row+int(kc)] = w.Prob
				}
				probLast[row+int(kc)] = w.Prob
			}
			if w.Prob == 0 {
				continue
			}
			code := int32(-1)
			if inDict {
				code = kc
			}
			//lint:allow hotalloc appends into pooled table scratch, per unique context not per record
			distProb = append(distProb, w.Prob)
			//lint:allow hotalloc appends into pooled table scratch, per unique context not per record
			distCode = append(distCode, code)
			//lint:allow hotalloc decision dictionary grows per unique context, amortized across records
			distDec = append(distDec, w.Decision)
		}
		off[u+1] = int32(len(distProb))
		am := int32(-1)
		if len(dist) > 0 {
			best := dist[0]
			for _, w := range dist[1:] {
				if w.Prob > best.Prob {
					best = w
				}
			}
			if kc, ok := v.decIndex[best.Decision]; ok {
				am = kc
			}
		}
		argmax[u] = am
	}
	// Appends may have regrown the pooled backings; keep the grown ones.
	*tb.dp = distProb
	*tb.dc = distCode

	tb.probFirst, tb.probLast = probFirst, probLast
	tb.argmax = argmax
	tb.distOff = off
	tb.distProb = distProb
	tb.distCode = distCode
	tb.distDec = distDec
	return tb
}

func (tb *viewTables[D]) release() {
	putFloats(tb.pf)
	putFloats(tb.pl)
	putFloats(tb.dp)
	putInt32s(tb.am)
	putInt32s(tb.off)
	putInt32s(tb.dc)
	putInt32s(tb.stamp)
}

// firstInvalidFull returns the lowest record index whose context has
// an invalid distribution, plus that error. Contexts are interned in
// first-occurrence order, so the first invalid dictionary entry is
// also the record-order first — exactly the record a sequential
// per-record validation would have rejected. Call only when
// anyInvalid.
func (tb *viewTables[D]) firstInvalidFull(ctxFirst []int32) (int, error) {
	for u, err := range tb.valErr {
		if err != nil {
			return int(ctxFirst[u]), err
		}
	}
	return 0, nil
}

// firstInvalidIdx returns the first position j in idx whose record's
// context has an invalid distribution (the resample-local index the
// slice path would report), or (0, nil) when the subset avoids every
// invalid context.
func (tb *viewTables[D]) firstInvalidIdx(ctxCodes []int32, idx []int) (int, error) {
	for j, id := range idx {
		if err := tb.valErr[ctxCodes[id]]; err != nil {
			return j, err
		}
	}
	return 0, nil
}

// modelTable snapshots a RewardModel over the view's dictionaries:
// pred[u*k+kc] is the prediction for each (context, decision) pair and
// dm[u] is the direct-method value Σ_d µ_new(d|c_u)·r̂(c_u, d),
// accumulated over the flattened distribution in its original entry
// order (bit-identical to the slice path's per-record dm loop).
type modelTable struct {
	pred []float64
	dm   []float64

	pp, pd *[]float64
}

// buildModelTable snapshots model over v's dictionaries. Models must
// be pure functions of (context, decision). A ViewTableModel fit on
// the same view is read directly from its dense cells, skipping the
// per-pair interface and map traffic.
func buildModelTable[C any, D comparable](v *TraceView[C, D], tb *viewTables[D], model RewardModel[C, D]) *modelTable {
	numCtx, k := len(v.contexts), tb.k
	//lint:allow hotalloc one table header per evaluation, released to pools by the caller
	mt := &modelTable{}
	mt.pp = getFloats(numCtx * k)
	mt.pd = getFloats(numCtx)
	pred, dm := *mt.pp, *mt.pd
	if m, ok := model.(*ViewTableModel[C, D]); ok && m.view == v {
		for u := 0; u < numCtx; u++ {
			row := u * k
			for kc := 0; kc < k; kc++ {
				pred[row+kc] = m.predictCell(row + kc)
			}
			s := 0.0
			for j := tb.distOff[u]; j < tb.distOff[u+1]; j++ {
				p := m.def
				if ci := tb.distCode[j]; ci >= 0 {
					p = m.predictCell(row + int(ci))
				}
				s += tb.distProb[j] * p
			}
			dm[u] = s
		}
	} else {
		for u := 0; u < numCtx; u++ {
			c := v.contexts[u]
			row := u * k
			for kc := 0; kc < k; kc++ {
				pred[row+kc] = model.Predict(c, v.decisions[kc])
			}
			s := 0.0
			for j := tb.distOff[u]; j < tb.distOff[u+1]; j++ {
				s += tb.distProb[j] * model.Predict(c, tb.distDec[j])
			}
			dm[u] = s
		}
	}
	mt.pred, mt.dm = pred, dm
	return mt
}

func (mt *modelTable) release() {
	putFloats(mt.pp)
	putFloats(mt.pd)
}

// ViewTableModel is the columnar counterpart of TableModel: per-
// (context, decision) mean rewards stored densely over a view's
// dictionary codes, with the fit trace's mean reward as the fallback
// for unseen pairs. FitTableView builds one; the view estimators
// recognize a model bound to the same view and bypass Predict's map
// lookups entirely.
//
// It is bit-identical to FitTable with any key function that is
// injective per (interned context, decision) pair — e.g. drevald's
// c.Key()+"|"+d — because both accumulate per-cell sums in record
// order and share the same default.
type ViewTableModel[C any, D comparable] struct {
	view   *TraceView[C, D]
	k      int
	vals   []float64
	counts []int32
	def    float64
}

// Predict implements RewardModel.
func (m *ViewTableModel[C, D]) Predict(c C, d D) float64 {
	u, ok := m.view.lookup(c)
	if !ok {
		return m.def
	}
	kc, ok := m.view.decIndex[d]
	if !ok {
		return m.def
	}
	return m.predictCell(int(u)*m.k + int(kc))
}

func (m *ViewTableModel[C, D]) predictCell(cell int) float64 {
	if m.counts[cell] == 0 {
		return m.def
	}
	return m.vals[cell]
}

// Default returns the fallback prediction (the fit records' mean
// reward).
func (m *ViewTableModel[C, D]) Default() float64 { return m.def }

// FitTableView fits the per-(context, decision) mean-reward model over
// the view's cells — the columnar FitTable.
func FitTableView[C any, D comparable](v *TraceView[C, D]) *ViewTableModel[C, D] {
	// Background never cancels, so the error branch is unreachable.
	m, _ := FitTableViewCtx(context.Background(), v)
	return m
}

// FitTableViewCtx is FitTableView with cooperative cancellation,
// mirroring FitTableCtx: ctx is checked once per chunk of records.
func FitTableViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D]) (*ViewTableModel[C, D], error) {
	numCtx, k := len(v.contexts), len(v.decisions)
	m := &ViewTableModel[C, D]{
		view:   v,
		k:      k,
		vals:   make([]float64, numCtx*k),
		counts: make([]int32, numCtx*k),
	}
	total := 0.0
	for i := range v.rewards {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cell := int(v.ctxCodes[i])*k + int(v.decCodes[i])
		m.vals[cell] += v.rewards[i]
		m.counts[cell]++
		total += v.rewards[i]
	}
	for cell, c := range m.counts {
		if c > 0 {
			m.vals[cell] /= float64(c)
		}
	}
	if n := len(v.rewards); n > 0 {
		m.def = total / float64(n)
	}
	return m, nil
}
