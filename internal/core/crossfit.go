package core

import (
	"errors"
	"fmt"
	"math"
)

// ModelFitter fits a reward model on a subset of trace records. It is
// used by CrossFitDR to keep the model independent of the records it
// corrects.
type ModelFitter[C any, D comparable] func(Trace[C, D]) (RewardModel[C, D], error)

// CrossFitDR runs the doubly robust estimator with K-fold cross-fitting:
// the trace is split into K folds, the reward model for each fold is fit
// on the other K−1 folds, and fold-local DR contributions are averaged.
//
// Cross-fitting matters whenever the reward model is estimated from the
// evaluation trace itself (the common case — e.g. CFA's k-NN model).
// A model fit on all records partially memorizes each logged reward, so
// the DR residuals r_k − r̂(c_k, d_k) collapse toward zero and DR
// silently degrades to the biased Direct Method. Fitting out-of-fold
// restores the correction.
func CrossFitDR[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D], fit ModelFitter[C, D], folds int, opts DROptions) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if folds < 2 {
		return Estimate{}, errors.New("core: cross-fitting needs at least 2 folds")
	}
	if folds > len(t) {
		folds = len(t)
	}
	if err := t.Validate(); err != nil {
		return Estimate{}, err
	}

	// Interleaved fold assignment keeps folds balanced even when the
	// trace has temporal structure.
	var total, weightSum float64
	var n int
	agg := Estimate{}
	for f := 0; f < folds; f++ {
		var fitPart, evalPart Trace[C, D]
		for i, rec := range t {
			if i%folds == f {
				evalPart = append(evalPart, rec)
			} else {
				fitPart = append(fitPart, rec)
			}
		}
		if len(evalPart) == 0 {
			continue
		}
		model, err := fit(fitPart)
		if err != nil {
			return Estimate{}, fmt.Errorf("core: fold %d model fit: %w", f, err)
		}
		est, err := DoublyRobust(evalPart, newPolicy, model, opts)
		if err != nil {
			return Estimate{}, fmt.Errorf("core: fold %d: %w", f, err)
		}
		w := float64(est.N)
		total += est.Value * w
		weightSum += w
		n += est.N
		agg.ESS += est.ESS
		if est.MaxWeight > agg.MaxWeight {
			agg.MaxWeight = est.MaxWeight
		}
		// Pool fold variances (approximate: folds are independent).
		agg.StdErr += est.StdErr * est.StdErr * w * w
	}
	if weightSum == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	agg.Value = total / weightSum
	agg.N = n
	agg.StdErr = math.Sqrt(agg.StdErr) / weightSum
	return agg, nil
}
