package core

import (
	"context"
	"fmt"
	"math"

	"drnet/internal/mathx"
)

// Estimate is the result of an off-policy estimator: a point estimate of
// the expected per-client reward of the new policy, plus plug-in
// uncertainty and weight diagnostics.
type Estimate struct {
	// Value is the estimated expected reward V̂(µ_new).
	Value float64
	// StdErr is the plug-in standard error: the sample standard
	// deviation of per-record contributions divided by √n.
	StdErr float64
	// N is the number of trace records used.
	N int
	// ESS is Kish's effective sample size of the importance weights
	// (equals N for DM, which uses no weights).
	ESS float64
	// MaxWeight is the largest importance weight encountered (zero for
	// DM). Large values flag poor overlap between old and new policy.
	MaxWeight float64
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d, ess=%.1f)", e.Value, e.StdErr, e.N, e.ESS)
}

func summarizeContributions(contrib []float64) Estimate {
	n := len(contrib)
	est := Estimate{Value: mathx.Mean(contrib), N: n}
	if n > 1 {
		est.StdErr = mathx.StdDev(contrib) / math.Sqrt(float64(n))
	}
	est.ESS = float64(n)
	return est
}

// DirectMethod estimates V(µ_new) with a reward model only (the paper's
// DM): V̂_DM = (1/n) Σ_k Σ_d µ_new(d|c_k) · r̂(c_k, d).
//
// DM has no variance problems — it uses every record and no importance
// weights — but inherits every bias of the reward model (§2.2.1).
func DirectMethod[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D]) (Estimate, error) {
	return DirectMethodCtx(context.Background(), t, newPolicy, model)
}

// DirectMethodCtx is DirectMethod with cooperative cancellation: when
// ctx ends, the per-record pass stops at the next chunk boundary and
// ctx's error is returned. An un-cancelled ctx yields bit-identical
// results to DirectMethod.
func DirectMethodCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D]) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	contrib := make([]float64, len(t))
	err := forEachRecordCtx(ctx, len(t), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rec := t[i]
			dist := newPolicy.Distribution(rec.Context)
			if err := ValidateDistribution(dist); err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			v := 0.0
			for _, w := range dist {
				if w.Prob == 0 {
					continue
				}
				v += w.Prob * model.Predict(rec.Context, w.Decision)
			}
			contrib[i] = v
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return summarizeContributions(contrib), nil
}

// IPSOptions tunes the inverse-propensity-score estimator.
type IPSOptions struct {
	// Clip, when positive, caps each importance weight at this value
	// (truncated IPS). Clipping trades bias for variance, which matters
	// exactly in the paper's low-randomness regime (§4.1).
	Clip float64
	// SelfNormalize divides by the sum of weights instead of n (the
	// SNIPS estimator), removing sensitivity to the weight scale at the
	// cost of O(1/n) bias.
	SelfNormalize bool
}

// IPS estimates V(µ_new) by importance-weighting observed rewards (the
// paper's model-free estimator):
//
//	V̂_IPS = (1/n) Σ_k [µ_new(d_k|c_k)/µ_old(d_k|c_k)] · r_k.
//
// It is unbiased whenever propensities are correct and positive wherever
// µ_new is, but its variance explodes when the old policy rarely takes
// decisions the new policy favours (§2.2.2).
func IPS[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D], opts IPSOptions) (Estimate, error) {
	return IPSCtx(context.Background(), t, newPolicy, opts)
}

// IPSCtx is IPS with cooperative cancellation, mirroring
// DirectMethodCtx: ctx's error is returned as soon as the per-record
// pass observes the cancellation.
func IPSCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D], opts IPSOptions) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if err := t.Validate(); err != nil {
		return Estimate{}, err
	}
	weights := make([]float64, len(t))
	contrib := make([]float64, len(t))
	if err := forEachRecordCtx(ctx, len(t), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rec := t[i]
			w := Prob(newPolicy, rec.Context, rec.Decision) / rec.Propensity
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			weights[i] = w
			contrib[i] = w * rec.Reward
		}
		return nil
	}); err != nil {
		return Estimate{}, err
	}
	maxW := maxWeight(weights)
	var est Estimate
	if opts.SelfNormalize {
		est.Value = mathx.WeightedMean(t.Rewards(), weights)
		// Plug-in stderr via the linearized influence function of SNIPS.
		n := float64(len(t))
		wbar := mathx.Mean(weights)
		if wbar > 0 {
			infl := make([]float64, len(t))
			for i := range t {
				infl[i] = weights[i] * (t[i].Reward - est.Value) / wbar
			}
			est.StdErr = mathx.StdDev(infl) / math.Sqrt(n)
		}
		est.N = len(t)
	} else {
		est = summarizeContributions(contrib)
	}
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}

// DROptions tunes the doubly robust estimator.
type DROptions struct {
	// Clip, when positive, caps importance weights as in IPSOptions.
	Clip float64
	// SelfNormalize normalizes the correction term by the sum of
	// weights (the SNDR / weighted DR estimator).
	SelfNormalize bool
}

// DoublyRobust estimates V(µ_new) by combining the reward model with an
// importance-weighted correction using observed rewards (the paper's
// Eq. 2):
//
//	V̂_DR = (1/n) Σ_k [ Σ_d µ_new(d|c_k) r̂(c_k,d)
//	                   + w_k · (r_k − r̂(c_k,d_k)) ],
//	w_k = µ_new(d_k|c_k)/µ_old(d_k|c_k).
//
// DR is accurate when either the reward model or the propensities are
// accurate ("double robustness"), and its error is bounded by roughly
// the product of the two ingredient errors ("second-order bias").
func DoublyRobust[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts DROptions) (Estimate, error) {
	return DoublyRobustCtx(context.Background(), t, newPolicy, model, opts)
}

// DoublyRobustCtx is DoublyRobust with cooperative cancellation,
// mirroring DirectMethodCtx: ctx's error is returned as soon as the
// per-record pass observes the cancellation.
func DoublyRobustCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts DROptions) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if err := t.Validate(); err != nil {
		return Estimate{}, err
	}
	n := len(t)
	dmPart := make([]float64, n)
	weights := make([]float64, n)
	resid := make([]float64, n)
	err := forEachRecordCtx(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rec := t[i]
			dist := newPolicy.Distribution(rec.Context)
			if err := ValidateDistribution(dist); err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			dm := 0.0
			for _, w := range dist {
				if w.Prob == 0 {
					continue
				}
				dm += w.Prob * model.Predict(rec.Context, w.Decision)
			}
			dmPart[i] = dm
			w := Prob(newPolicy, rec.Context, rec.Decision) / rec.Propensity
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			weights[i] = w
			resid[i] = rec.Reward - model.Predict(rec.Context, rec.Decision)
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	maxW := maxWeight(weights)

	contrib := make([]float64, n)
	if opts.SelfNormalize {
		sumW := 0.0
		for _, w := range weights {
			sumW += w
		}
		norm := float64(n)
		if sumW > 0 {
			norm = sumW
		}
		for i := range contrib {
			contrib[i] = dmPart[i] + float64(n)/norm*weights[i]*resid[i]
		}
	} else {
		for i := range contrib {
			contrib[i] = dmPart[i] + weights[i]*resid[i]
		}
	}
	est := summarizeContributions(contrib)
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return est, nil
}

// MatchedRewards estimates V(µ_new) by exact decision matching: it
// averages observed rewards over records whose logged decision would be
// the (deterministic, highest-probability) choice of the new policy.
// This is the CFA-style evaluator of Figure 5 — unbiased under a
// randomized old policy but starved of data as the decision space grows.
// It returns the number of matched records in Estimate.N. When no record
// matches, it returns ErrNoMatches.
func MatchedRewards[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D]) (Estimate, error) {
	return MatchedRewardsCtx(context.Background(), t, newPolicy)
}

// MatchedRewardsCtx is MatchedRewards with cooperative cancellation:
// ctx is checked once per chunk of records, so a cancelled ctx stops
// the scan within one chunk boundary and returns ctx's error.
func MatchedRewardsCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D]) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	var matched []float64
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		if argmax(newPolicy.Distribution(rec.Context)) == rec.Decision {
			matched = append(matched, rec.Reward)
		}
	}
	if len(matched) == 0 {
		return Estimate{}, ErrNoMatches
	}
	est := summarizeContributions(matched)
	return est, nil
}

// ErrNoMatches is returned by MatchedRewards when the new policy agrees
// with the logged decision on zero records.
var ErrNoMatches = fmt.Errorf("core: no records match the new policy's decisions")

// maxWeight scans for the largest weight; a sequential post-pass so
// the parallel fill loops stay index-pure (NaN weights are skipped,
// matching the old in-loop `w > maxW` comparison).
func maxWeight(ws []float64) float64 {
	maxW := 0.0
	for _, w := range ws {
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}

func argmax[D comparable](dist []Weighted[D]) D {
	best := dist[0]
	for _, w := range dist[1:] {
		if w.Prob > best.Prob {
			best = w
		}
	}
	return best.Decision
}
