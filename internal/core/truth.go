package core

// TrueValue computes the exact expected per-client reward of a policy
// when the true reward function is known (only possible in simulation):
// V(µ) = (1/n) Σ_k Σ_d µ(d|c_k) · r(c_k, d). This is the paper's ground
// truth V against which relative evaluation error is measured.
func TrueValue[C any, D comparable](contexts []C, policy Policy[C, D], trueReward func(c C, d D) float64) float64 {
	if len(contexts) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range contexts {
		for _, w := range policy.Distribution(c) {
			if w.Prob == 0 {
				continue
			}
			total += w.Prob * trueReward(c, w.Decision)
		}
	}
	return total / float64(len(contexts))
}

// CollectTrace simulates the logging phase: for each context, sample a
// decision from the old policy, observe the reward from the true reward
// function, and record the old policy's propensity. This is the
// "real deployment" arrow of the paper's Figure 1, available to us only
// because the substrate is simulated.
func CollectTrace[C any, D comparable](contexts []C, oldPolicy Policy[C, D], drawReward func(c C, d D) float64, rng interface {
	Categorical([]float64) int
}) Trace[C, D] {
	t := make(Trace[C, D], 0, len(contexts))
	for _, c := range contexts {
		dist := oldPolicy.Distribution(c)
		probs := make([]float64, len(dist))
		for i, w := range dist {
			probs[i] = w.Prob
		}
		pick := dist[rng.Categorical(probs)]
		t = append(t, Record[C, D]{
			Context:    c,
			Decision:   pick.Decision,
			Reward:     drawReward(c, pick.Decision),
			Propensity: pick.Prob,
		})
	}
	return t
}
