package core

import (
	"context"
	"errors"
	"math"

	"drnet/internal/mathx"
)

// SwitchOptions configures SwitchDR.
type SwitchOptions struct {
	// Tau is the importance-weight threshold: records whose weight
	// exceeds Tau contribute through the reward model alone; the rest
	// keep the full DR correction. Tau <= 0 selects a data-driven
	// default (the 95th percentile of the weights, at least 1).
	Tau float64
}

// SwitchDR is the SWITCH estimator of Wang, Agarwal & Dudík (2017)
// adapted to the DR form: a per-record interpolation between DR (where
// importance weights are moderate, so the correction is trustworthy)
// and the pure Direct Method (where weights explode, so the correction
// would inject more variance than the model's bias costs).
//
// Compared with hard clipping (DROptions.Clip), switching drops the
// partially-corrected term entirely above the threshold instead of
// keeping a truncated — and therefore systematically understated —
// correction. On traces logged by nearly deterministic policies (§4.1's
// regime) this is often the better bias/variance point; the ablation
// bench BenchmarkAblationSwitchVsClip compares the two.
func SwitchDR[C any, D comparable](t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts SwitchOptions) (Estimate, error) {
	return SwitchDRCtx(context.Background(), t, newPolicy, model, opts)
}

// SwitchDRCtx is SwitchDR with cooperative cancellation: ctx is checked
// once per chunk of records in both the weight and the contribution
// pass, so a cancelled ctx stops the estimate within one chunk boundary
// and returns ctx's error.
func SwitchDRCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy Policy[C, D], model RewardModel[C, D], opts SwitchOptions) (Estimate, error) {
	if len(t) == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	if err := t.Validate(); err != nil {
		return Estimate{}, err
	}
	n := len(t)
	weights := make([]float64, n)
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		weights[i] = Prob(newPolicy, rec.Context, rec.Decision) / rec.Propensity
	}
	tau := opts.Tau
	if tau <= 0 {
		tau = math.Max(1, mathx.Quantile(weights, 0.95))
	}
	contrib := make([]float64, n)
	maxW, kept := 0.0, make([]float64, 0, n)
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		dist := newPolicy.Distribution(rec.Context)
		if err := ValidateDistribution(dist); err != nil {
			return Estimate{}, err
		}
		dm := 0.0
		for _, w := range dist {
			if w.Prob == 0 {
				continue
			}
			dm += w.Prob * model.Predict(rec.Context, w.Decision)
		}
		if weights[i] <= tau {
			contrib[i] = dm + weights[i]*(rec.Reward-model.Predict(rec.Context, rec.Decision))
			kept = append(kept, weights[i])
			if weights[i] > maxW {
				maxW = weights[i]
			}
		} else {
			contrib[i] = dm
		}
	}
	est := summarizeContributions(contrib)
	if len(kept) > 0 {
		est.ESS = mathx.EffectiveSampleSize(kept)
	}
	est.MaxWeight = maxW
	return est, nil
}

// StreamingDR is an online accumulator for the doubly robust estimate:
// records are offered one at a time (as a measurement pipeline delivers
// them) and the current estimate is available at any point in O(1).
// The final estimate is identical to DoublyRobust over the same records
// with the same options (no clipping or self-normalization).
type StreamingDR[C any, D comparable] struct {
	newPolicy Policy[C, D]
	model     RewardModel[C, D]

	n             int
	sum, sumSq    float64
	weightSum     float64
	weightSqSum   float64
	maxWeight     float64
	rejectedCount int
}

// NewStreamingDR creates an accumulator for the given target policy and
// reward model.
func NewStreamingDR[C any, D comparable](newPolicy Policy[C, D], model RewardModel[C, D]) *StreamingDR[C, D] {
	return &StreamingDR[C, D]{newPolicy: newPolicy, model: model}
}

// Offer folds one record into the estimate. Records with invalid
// propensities or improper policy distributions are rejected with an
// error and do not affect the estimate.
func (s *StreamingDR[C, D]) Offer(rec Record[C, D]) error {
	if rec.Propensity <= 0 || rec.Propensity > 1 {
		s.rejectedCount++
		return errors.New("core: record propensity outside (0,1]")
	}
	dist := s.newPolicy.Distribution(rec.Context)
	if err := ValidateDistribution(dist); err != nil {
		s.rejectedCount++
		return err
	}
	dm := 0.0
	var pNew float64
	for _, w := range dist {
		if w.Prob == 0 {
			continue
		}
		dm += w.Prob * s.model.Predict(rec.Context, w.Decision)
		if w.Decision == rec.Decision {
			pNew = w.Prob
		}
	}
	w := pNew / rec.Propensity
	c := dm + w*(rec.Reward-s.model.Predict(rec.Context, rec.Decision))
	s.n++
	s.sum += c
	s.sumSq += c * c
	s.weightSum += w
	s.weightSqSum += w * w
	if w > s.maxWeight {
		s.maxWeight = w
	}
	return nil
}

// N returns the number of accepted records.
func (s *StreamingDR[C, D]) N() int { return s.n }

// Rejected returns the number of rejected records.
func (s *StreamingDR[C, D]) Rejected() int { return s.rejectedCount }

// Estimate returns the current DR estimate. It returns ErrEmptyTrace
// before any record has been accepted.
func (s *StreamingDR[C, D]) Estimate() (Estimate, error) {
	if s.n == 0 {
		return Estimate{}, ErrEmptyTrace
	}
	n := float64(s.n)
	est := Estimate{
		Value:     s.sum / n,
		N:         s.n,
		MaxWeight: s.maxWeight,
	}
	if s.n > 1 {
		variance := (s.sumSq - s.sum*s.sum/n) / (n - 1)
		if variance > 0 {
			est.StdErr = math.Sqrt(variance / n)
		}
	}
	if s.weightSqSum > 0 {
		est.ESS = s.weightSum * s.weightSum / s.weightSqSum
	}
	return est, nil
}
