package core

import (
	"errors"
	"testing"

	"drnet/internal/mathx"
)

func banditCandidates() []Candidate[float64, int] {
	return []Candidate[float64, int]{
		{Name: "prefer-0", Policy: banditOldPolicy(0.2)},
		{Name: "prefer-2", Policy: banditNewPolicy(0.2)},
		{Name: "uniform", Policy: UniformPolicy[float64, int]{Decisions: banditDecisions}},
	}
}

func TestSelectBestRanksByTrueValue(t *testing.T) {
	b := newTestBandit(81, 0.1)
	tr, _ := collectBanditTrace(b, 3000, 0.5)
	rng := mathx.NewRNG(5)
	model := RewardFunc[float64, int](b.trueReward)
	ranked, err := SelectBest(tr, model, banditCandidates(), rng, SelectOptions{Bootstrap: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("kept %d candidates, want 3", len(ranked))
	}
	// prefer-2 has the highest true value (reward grows with d).
	if ranked[0].Candidate.Name != "prefer-2" {
		t.Fatalf("best candidate = %q, want prefer-2", ranked[0].Candidate.Name)
	}
	if ranked[len(ranked)-1].Candidate.Name != "prefer-0" {
		t.Fatalf("worst candidate = %q, want prefer-0", ranked[len(ranked)-1].Candidate.Name)
	}
	for _, r := range ranked {
		if r.Interval.Lo > r.Estimate.Value || r.Interval.Hi < r.Estimate.Value {
			t.Fatalf("estimate %g outside its own CI [%g, %g]", r.Estimate.Value, r.Interval.Lo, r.Interval.Hi)
		}
		if r.Diagnostics.N != len(tr) {
			t.Fatal("diagnostics missing")
		}
	}
	// Clearly separated values: intervals should not overlap.
	if Overlaps(ranked) {
		t.Log("warning: best two candidates overlap (acceptable but unexpected at n=3000)")
	}
}

func TestSelectBestFiltersUnsupported(t *testing.T) {
	// Trace logged by a deterministic policy cannot support evaluating
	// a disjoint deterministic candidate.
	b := newTestBandit(82, 0.1)
	old := DeterministicPolicy[float64, int]{Choose: func(float64) int { return 0 }}
	ctxs := b.contexts(500)
	tr := CollectTrace(ctxs, old, b.drawReward, b.rng)
	rng := mathx.NewRNG(6)
	model := RewardFunc[float64, int](b.trueReward)
	cands := []Candidate[float64, int]{
		{Name: "disjoint", Policy: DeterministicPolicy[float64, int]{Choose: func(float64) int { return 2 }}},
	}
	_, err := SelectBest(tr, model, cands, rng, SelectOptions{})
	if !errors.Is(err, ErrNoSupportedCandidates) {
		t.Fatalf("want ErrNoSupportedCandidates, got %v", err)
	}
	// Adding a supported candidate keeps only it.
	cands = append(cands, Candidate[float64, int]{Name: "same", Policy: old})
	ranked, err := SelectBest(tr, model, cands, rng, SelectOptions{Bootstrap: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || ranked[0].Candidate.Name != "same" {
		t.Fatalf("ranked = %+v", ranked)
	}
}

func TestSelectBestErrors(t *testing.T) {
	rng := mathx.NewRNG(7)
	model := ConstantModel[float64, int]{}
	if _, err := SelectBest(Trace[float64, int]{}, model, banditCandidates(), rng, SelectOptions{}); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	tr := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: 1}}
	if _, err := SelectBest(tr, model, nil, rng, SelectOptions{}); err == nil {
		t.Fatal("expected error for no candidates")
	}
	bad := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: 0}}
	if _, err := SelectBest(bad, model, banditCandidates(), rng, SelectOptions{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestOverlaps(t *testing.T) {
	mk := func(lo1, hi1, lo2, hi2 float64) []Ranked[float64, int] {
		return []Ranked[float64, int]{
			{Interval: Interval{Lo: lo1, Hi: hi1}},
			{Interval: Interval{Lo: lo2, Hi: hi2}},
		}
	}
	if !Overlaps(mk(0, 2, 1, 3)) {
		t.Fatal("overlapping intervals not detected")
	}
	if Overlaps(mk(2, 3, 0, 1)) {
		t.Fatal("disjoint intervals reported as overlapping")
	}
	if Overlaps(mk(0, 1, 2, 3)[:1]) {
		t.Fatal("single candidate cannot overlap")
	}
}

func TestFitPropensityModelRecoversLogging(t *testing.T) {
	// Logging depends on the context through a logistic-like rule; the
	// fitted propensities should be close to the truth.
	rng := mathx.NewRNG(91)
	old := FuncPolicy[float64, int](func(x float64) []Weighted[int] {
		p := mathx.Sigmoid(4 * (x - 0.5)) // decision 1 more likely for large x
		return []Weighted[int]{{Decision: 0, Prob: 1 - p}, {Decision: 1, Prob: p}}
	})
	var ctxs []float64
	for i := 0; i < 4000; i++ {
		ctxs = append(ctxs, rng.Float64())
	}
	tr := CollectTrace(ctxs, old, func(float64, int) float64 { return 0 }, rng)
	truth := make([]float64, len(tr))
	for i := range tr {
		truth[i] = tr[i].Propensity
		tr[i].Propensity = 0
	}
	models, err := FitPropensityModel(tr, func(x float64) []float64 { return []float64{x} }, 1e-4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("fitted %d models, want 2", len(models))
	}
	var worst float64
	for i := range tr {
		d := tr[i].Propensity - truth[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 0.1 {
		t.Fatalf("fitted propensities off by up to %g", worst)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitPropensityModelErrors(t *testing.T) {
	feat := func(x float64) []float64 { return []float64{x} }
	if _, err := FitPropensityModel(Trace[float64, int]{}, feat, 0, 0); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	single := Trace[float64, int]{{Context: 0.5, Decision: 0}}
	if _, err := FitPropensityModel(single, feat, 0, 0); err == nil {
		t.Fatal("single decision should fail")
	}
	two := Trace[float64, int]{{Context: 0.5, Decision: 0}, {Context: 0.6, Decision: 1}}
	if _, err := FitPropensityModel(two, feat, -1, 0); err == nil {
		t.Fatal("negative lambda should fail")
	}
}

func TestFitPropensityModelEnablesDR(t *testing.T) {
	// End-to-end: estimate propensities with the logistic model, then
	// run DR and compare to truth.
	rng := mathx.NewRNG(92)
	b := newTestBandit(93, 0.1)
	old := FuncPolicy[float64, int](func(x float64) []Weighted[int] {
		p := mathx.Sigmoid(3 * (x - 0.5))
		q := (1 - p) / 2
		return []Weighted[int]{{0, q}, {1, q}, {2, p}}
	})
	ctxs := b.contexts(4000)
	tr := CollectTrace(ctxs, old, b.drawReward, b.rng)
	for i := range tr {
		tr[i].Propensity = 0 // forget the logging policy
	}
	if _, err := FitPropensityModel(tr, func(x float64) []float64 { return []float64{x} }, 1e-4, 1e-3); err != nil {
		t.Fatal(err)
	}
	np := banditNewPolicy(0.2)
	truth := TrueValue(ctxs, np, b.trueReward)
	dr, err := DoublyRobust(tr, np, ConstantModel[float64, int]{Value: 1}, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := mathx.RelativeError(truth, dr.Value); e > 0.1 {
		t.Fatalf("DR with fitted propensities error %g too high", e)
	}
	_ = rng
}

func TestSafeExplorationPolicy(t *testing.T) {
	model := RewardFunc[int, int](func(c, d int) float64 { return -float64(d) }) // 0 best, regret = d
	p := SafeExplorationPolicy[int, int]{
		Base:      func(int) int { return 0 },
		Decisions: []int{0, 1, 2, 3},
		Model:     model,
		Epsilon:   0.2,
		MaxRegret: 1.5,
	}
	dist := p.Distribution(0)
	if err := ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	// Safe set = {1} (regret 1 <= 1.5); decisions 2, 3 excluded.
	if got := Prob[int, int](p, 0, 0); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("greedy prob %g", got)
	}
	if got := Prob[int, int](p, 0, 1); !almostEqual(got, 0.2, 1e-12) {
		t.Fatalf("safe prob %g", got)
	}
	if Prob[int, int](p, 0, 2) != 0 || Prob[int, int](p, 0, 3) != 0 {
		t.Fatal("costly decisions must never be explored")
	}
	// No safe alternatives: deterministic.
	strict := p
	strict.MaxRegret = 0.5
	if got := Prob[int, int](strict, 0, 0); got != 1 {
		t.Fatalf("with no safe set the policy should be deterministic, got %g", got)
	}
	// Zero budget: deterministic.
	off := p
	off.Epsilon = 0
	if got := Prob[int, int](off, 0, 0); got != 1 {
		t.Fatalf("epsilon 0 should be deterministic, got %g", got)
	}
}
