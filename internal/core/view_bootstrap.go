package core

import (
	"context"
	"fmt"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// ViewEstimator is the columnar counterpart of Estimator: it evaluates
// a statistic over the record multiset idx (indices into v, duplicates
// allowed). The bootstrap variants below call it once per resample
// with a pooled index buffer instead of materializing a record copy.
type ViewEstimator[C any, D comparable] func(v *TraceView[C, D], idx []int) (Estimate, error)

// BootstrapView is Bootstrap over a columnar view: resamples are drawn
// by index from the same rng stream, so for an estimator pair
// satisfying est_view(v, idx) ≡ est_slice(resample) the interval is
// bit-identical to Bootstrap's.
func BootstrapView[C any, D comparable](v *TraceView[C, D], est ViewEstimator[C, D], rng *mathx.RNG, b int, level float64) (Interval, error) {
	return BootstrapViewCtx(context.Background(), v, est, rng, b, level)
}

// BootstrapViewCtx is BootstrapView with cooperative cancellation,
// mirroring BootstrapCtx: ctx is checked before each resample.
func BootstrapViewCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], est ViewEstimator[C, D], rng *mathx.RNG, b int, level float64) (Interval, error) {
	n := v.Len()
	if n == 0 {
		return Interval{}, ErrEmptyTrace
	}
	if b <= 0 {
		b = 200
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("core: confidence level %g out of (0,1)", level)
	}
	var values []float64
	var lastErr error
	ip := getInts(n)
	defer putInts(ip)
	idx := *ip
	for i := 0; i < b; i++ {
		if err := ctx.Err(); err != nil {
			return Interval{}, err
		}
		for j := range idx {
			idx[j] = rng.Intn(n)
		}
		e, err := est(v, idx)
		if err != nil {
			lastErr = err
			continue
		}
		values = append(values, e.Value)
	}
	if len(values) == 0 {
		return Interval{}, fmt.Errorf("core: all bootstrap resamples failed: %w", lastErr)
	}
	alpha := (1 - level) / 2
	return Interval{
		Lo:    mathx.Quantile(values, alpha),
		Hi:    mathx.Quantile(values, 1-alpha),
		Level: level,
	}, nil
}

// BootstrapViewSeeded is BootstrapSeeded over a columnar view:
// resample i is drawn by index from parallel.ShardedRNG shard i — the
// identical stream consumption as the record-copying version — so the
// interval is a pure function of (v, est, seed, b, level),
// bit-identical at every worker count and to BootstrapSeeded with the
// equivalent slice estimator.
func BootstrapViewSeeded[C any, D comparable](v *TraceView[C, D], est ViewEstimator[C, D], seed int64, b int, level float64) (Interval, error) {
	iv, _, err := BootstrapViewSeededStats(v, est, seed, b, level)
	return iv, err
}

// BootstrapViewSeededStats is BootstrapViewSeeded plus resample
// bookkeeping.
func BootstrapViewSeededStats[C any, D comparable](v *TraceView[C, D], est ViewEstimator[C, D], seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	return BootstrapViewSeededStatsCtx(context.Background(), v, est, seed, b, level)
}

// BootstrapViewSeededCtx is BootstrapViewSeeded with cooperative
// cancellation.
func BootstrapViewSeededCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], est ViewEstimator[C, D], seed int64, b int, level float64) (Interval, error) {
	iv, _, err := BootstrapViewSeededStatsCtx(ctx, v, est, seed, b, level)
	return iv, err
}

// BootstrapViewSeededStatsCtx is BootstrapSeededStatsCtx over a
// columnar view: per-resample work is one pooled index fill plus one
// ViewEstimator call — no record copies, no per-resample slices.
func BootstrapViewSeededStatsCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], est ViewEstimator[C, D], seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	n := v.Len()
	if n == 0 {
		return Interval{}, BootstrapStats{}, ErrEmptyTrace
	}
	if b <= 0 {
		b = 200
	}
	if level <= 0 || level >= 1 {
		return Interval{}, BootstrapStats{}, fmt.Errorf("core: confidence level %g out of (0,1)", level)
	}
	sh := parallel.NewShardedRNG(seed)
	draws, err := parallel.TimesCtx(ctx, b, 0, func(i int) (bootstrapDraw, error) {
		rng := sh.Shard(i)
		ip := getInts(n)
		idx := *ip
		for j := range idx {
			idx[j] = rng.Intn(n)
		}
		e, derr := est(v, idx)
		putInts(ip)
		if derr != nil {
			return bootstrapDraw{err: derr}, nil
		}
		return bootstrapDraw{value: e.Value}, nil
	})
	if err != nil {
		return Interval{}, BootstrapStats{}, err
	}
	return collectBootstrapDraws(draws, b, level)
}

// bootstrapDraw is one resample outcome from a seeded bootstrap run.
type bootstrapDraw struct {
	value float64
	err   error
}

// collectBootstrapDraws aggregates per-resample outcomes into the
// percentile interval and stats, exactly as BootstrapSeededStatsCtx
// does.
func collectBootstrapDraws(draws []bootstrapDraw, b int, level float64) (Interval, BootstrapStats, error) {
	stats := BootstrapStats{Resamples: b}
	values := make([]float64, 0, b)
	var lastErr error
	for _, d := range draws {
		if d.err != nil {
			lastErr = d.err
			stats.Skipped++
			continue
		}
		values = append(values, d.value)
	}
	if len(values) == 0 {
		return Interval{}, stats, fmt.Errorf("core: all bootstrap resamples failed: %w", lastErr)
	}
	alpha := (1 - level) / 2
	return Interval{
		Lo:    mathx.Quantile(values, alpha),
		Hi:    mathx.Quantile(values, 1-alpha),
		Level: level,
	}, stats, nil
}

// BootstrapDRViewSeeded bootstraps the refit doubly robust estimator:
// each resample refits the per-(context, decision) table model on the
// resampled records and evaluates DR with it — the exact estimator
// drevald's /evaluate serves (FitTable + DoublyRobust per resample),
// reduced to running sufficient statistics over index draws. The
// interval and skip counts are bit-identical to BootstrapSeededStats
// with that slice closure (for table-model key functions injective per
// (interned context, decision) pair).
func BootstrapDRViewSeeded[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], opts DROptions, seed int64, b int, level float64) (Interval, error) {
	iv, _, err := BootstrapDRViewSeededStats(v, newPolicy, opts, seed, b, level)
	return iv, err
}

// BootstrapDRViewSeededStats is BootstrapDRViewSeeded plus resample
// bookkeeping.
func BootstrapDRViewSeededStats[C any, D comparable](v *TraceView[C, D], newPolicy Policy[C, D], opts DROptions, seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	return BootstrapDRViewSeededStatsCtx(context.Background(), v, newPolicy, opts, seed, b, level)
}

// BootstrapDRViewSeededStatsCtx is BootstrapDRViewSeededStats with
// cooperative cancellation. The policy is flattened over the view's
// context dictionary once; each resample then touches only pooled
// arrays: per-cell refit sums, per-context direct-method values, and
// an in-order running contribution sum.
func BootstrapDRViewSeededStatsCtx[C any, D comparable](ctx context.Context, v *TraceView[C, D], newPolicy Policy[C, D], opts DROptions, seed int64, b int, level float64) (Interval, BootstrapStats, error) {
	n := v.Len()
	if n == 0 {
		return Interval{}, BootstrapStats{}, ErrEmptyTrace
	}
	if b <= 0 {
		b = 200
	}
	if level <= 0 || level >= 1 {
		return Interval{}, BootstrapStats{}, fmt.Errorf("core: confidence level %g out of (0,1)", level)
	}
	tb := buildViewTables(v, newPolicy)
	defer tb.release()
	sh := parallel.NewShardedRNG(seed)
	draws, err := parallel.TimesCtx(ctx, b, 0, func(i int) (bootstrapDraw, error) {
		rng := sh.Shard(i)
		ip := getInts(n)
		idx := *ip
		for j := range idx {
			idx[j] = rng.Intn(n)
		}
		val, derr := drRefitResampleValue(v, tb, idx, opts)
		putInts(ip)
		if derr != nil {
			return bootstrapDraw{err: derr}, nil
		}
		return bootstrapDraw{value: val}, nil
	})
	if err != nil {
		return Interval{}, BootstrapStats{}, err
	}
	return collectBootstrapDraws(draws, b, level)
}

// drRefitResampleValue computes the DR point estimate of one resample
// with a table model refit on that resample. Every accumulation runs
// in idx order, reproducing bit-for-bit what FitTable + DoublyRobust
// compute on the materialized resample:
//   - per-cell reward sums and the default (resample mean reward)
//     accumulate in record order, as FitTableCtx's map does;
//   - the per-context dm value consumes the flattened distribution in
//     its original entry order, as the per-record dm loop does;
//   - contributions are summed in record order, as
//     summarizeContributions' mean does (only the point estimate
//     enters the interval, so no per-record array is needed).
func drRefitResampleValue[C any, D comparable](v *TraceView[C, D], tb *viewTables[D], idx []int, opts DROptions) (float64, error) {
	if tb.anyInvalid {
		if j, err := tb.firstInvalidIdx(v.ctxCodes, idx); err != nil {
			return 0, fmt.Errorf("record %d: %w", j, err)
		}
	}
	numCtx, k := len(tb.argmax), tb.k
	mp := getFloats(numCtx * k)
	cp := getInt32s(numCtx * k)
	dp := getFloats(numCtx)
	defer putFloats(mp)
	defer putInt32s(cp)
	defer putFloats(dp)
	means, counts, dm := *mp, *cp, *dp
	for c := range means {
		means[c] = 0
		counts[c] = 0
	}
	// Refit: per-cell mean rewards plus the resample's mean reward as
	// the default for unseen cells.
	total := 0.0
	for _, id := range idx {
		cell := int(v.ctxCodes[id])*k + int(v.decCodes[id])
		means[cell] += v.rewards[id]
		counts[cell]++
		total += v.rewards[id]
	}
	nf := float64(len(idx))
	def := total / nf
	for c, cnt := range counts {
		if cnt > 0 {
			means[c] /= float64(cnt)
		}
	}
	// Direct-method value per context under the refit model.
	for u := 0; u < numCtx; u++ {
		row := u * k
		s := 0.0
		for j := tb.distOff[u]; j < tb.distOff[u+1]; j++ {
			p := def
			if ci := tb.distCode[j]; ci >= 0 && counts[row+int(ci)] > 0 {
				p = means[row+int(ci)]
			}
			s += tb.distProb[j] * p
		}
		dm[u] = s
	}
	if opts.SelfNormalize {
		sumW := 0.0
		for _, id := range idx {
			u, kc := int(v.ctxCodes[id]), int(v.decCodes[id])
			w := tb.probFirst[u*k+kc] / v.propensities[id]
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			sumW += w
		}
		norm := nf
		if sumW > 0 {
			norm = sumW
		}
		s := 0.0
		for _, id := range idx {
			u, kc := int(v.ctxCodes[id]), int(v.decCodes[id])
			cell := u*k + kc
			w := tb.probFirst[cell] / v.propensities[id]
			if opts.Clip > 0 && w > opts.Clip {
				w = opts.Clip
			}
			pred := def
			if counts[cell] > 0 {
				pred = means[cell]
			}
			resid := v.rewards[id] - pred
			s += dm[u] + nf/norm*w*resid
		}
		return s / nf, nil
	}
	s := 0.0
	for _, id := range idx {
		u, kc := int(v.ctxCodes[id]), int(v.decCodes[id])
		cell := u*k + kc
		w := tb.probFirst[cell] / v.propensities[id]
		if opts.Clip > 0 && w > opts.Clip {
			w = opts.Clip
		}
		pred := def
		if counts[cell] > 0 {
			pred = means[cell]
		}
		s += dm[u] + w*(v.rewards[id]-pred)
	}
	return s / nf, nil
}
