package core

import (
	"fmt"
	"math"
	"sync"

	"drnet/internal/mathx"
)

// This file is the incremental-evaluation engine behind streaming
// ingestion: an appendable columnar store (ViewBuilder) plus per-policy
// running sufficient statistics (StreamEval) that answer DM/IPS/SNIPS/
// DR and Diagnose queries in O(1) from aggregates instead of O(n)
// re-scans.
//
// Equivalence contract (locked down by stream_equivalence_test.go):
// with a FROZEN reward model — the Dudík, Langford & Li (2011) regime
// the streaming DR path requires — the running aggregates reproduce
// the *View estimators over the concatenated trace
//
//   - bit-identically for every quantity whose batch reduction is a
//     single in-order pass: DM/IPS/SNIPS/DR Value (non-self-normalized
//     DR), ESS, MaxWeight, N, and all Diagnostics fields; and
//   - within float tolerance for StdErr (the batch path uses two-pass
//     variance, which no O(1) state can reproduce exactly; the stream
//     uses Welford/co-moment algebra) and for the self-normalized DR
//     value (its final n/Σw factor distributes differently).
//
// Crash-replay equivalence is exact for ALL fields: two StreamEvals
// fed the same records in the same order run the same accumulator
// algebra and end in identical states, which is the WAL chaos suite's
// headline invariant.

// ViewBuilder is an appendable TraceView: records stream in via
// Append with exactly buildView's validation (same error text, same
// record indexing), and Snapshot exposes the current prefix as a
// read-only TraceView in O(U+K) — the backing columns are shared
// (append-only, so the snapshotted prefix is immutable) and only the
// small interning indexes are copied.
//
// Append and Snapshot are safe for concurrent use with each other; the
// returned views are immutable and safe to share across goroutines.
type ViewBuilder[C any, D comparable] struct {
	mu           sync.Mutex
	rewards      []float64   // guarded by mu
	propensities []float64   // guarded by mu
	ctxCodes     []int32     // guarded by mu
	decCodes     []int32     // guarded by mu
	contexts     []C         // guarded by mu
	ctxFirst     []int32     // guarded by mu
	decisions    []D         // guarded by mu
	decIndex     map[D]int32 // guarded by mu
	intern       func(C) (int32, bool)
	// copyLookup clones the context-interning index under the lock and
	// returns a lookup closure over the clone, so snapshots never read
	// a map a concurrent Append is writing.
	copyLookup func() func(C) (int32, bool)
}

// NewViewBuilder returns an empty builder interning contexts by value
// (the streaming NewTraceView).
func NewViewBuilder[C comparable, D comparable]() *ViewBuilder[C, D] {
	b := newViewBuilder[C, D]()
	index := make(map[C]int32)
	b.intern = func(c C) (int32, bool) {
		if u, ok := index[c]; ok {
			return u, false
		}
		u := int32(len(index))
		index[c] = u
		return u, true
	}
	b.copyLookup = func() func(C) (int32, bool) {
		cp := make(map[C]int32, len(index))
		for k, v := range index {
			cp[k] = v
		}
		return func(c C) (int32, bool) {
			u, ok := cp[c]
			return u, ok
		}
	}
	return b
}

// NewViewBuilderKeyed returns an empty builder interning contexts by
// key (the streaming NewTraceViewKeyed). The key must be injective up
// to behavioral equivalence, exactly as for NewTraceViewKeyed.
func NewViewBuilderKeyed[C any, D comparable](key func(C) string) *ViewBuilder[C, D] {
	b := newViewBuilder[C, D]()
	index := make(map[string]int32)
	b.intern = func(c C) (int32, bool) {
		k := key(c)
		if u, ok := index[k]; ok {
			return u, false
		}
		u := int32(len(index))
		index[k] = u
		return u, true
	}
	b.copyLookup = func() func(C) (int32, bool) {
		cp := make(map[string]int32, len(index))
		for k, v := range index {
			cp[k] = v
		}
		return func(c C) (int32, bool) {
			u, ok := cp[key(c)]
			return u, ok
		}
	}
	return b
}

func newViewBuilder[C any, D comparable]() *ViewBuilder[C, D] {
	return &ViewBuilder[C, D]{decIndex: make(map[D]int32)}
}

// Append validates and appends one record, returning buildView's exact
// error for invalid input (with the record's stream index). On error
// nothing is appended.
func (b *ViewBuilder[C, D]) Append(rec Record[C, D]) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	i := len(b.rewards)
	if int64(i) >= math.MaxInt32 {
		return fmt.Errorf("core: trace length %d exceeds TraceView capacity", i+1)
	}
	// The negated comparison also rejects NaN propensities, exactly as
	// in Trace.Validate / buildView.
	if !(rec.Propensity > 0) || rec.Propensity > 1 {
		return fmt.Errorf("core: record %d has propensity %g, want (0,1]", i, rec.Propensity)
	}
	if math.IsNaN(rec.Reward) {
		return fmt.Errorf("core: record %d has NaN reward", i)
	}
	if math.IsInf(rec.Reward, 0) {
		return fmt.Errorf("core: record %d has infinite reward", i)
	}
	u, isNew := b.intern(rec.Context)
	if isNew {
		b.contexts = append(b.contexts, rec.Context)
		b.ctxFirst = append(b.ctxFirst, int32(i))
	}
	k, ok := b.decIndex[rec.Decision]
	if !ok {
		k = int32(len(b.decisions))
		b.decisions = append(b.decisions, rec.Decision)
		b.decIndex[rec.Decision] = k
	}
	b.ctxCodes = append(b.ctxCodes, u)
	b.decCodes = append(b.decCodes, k)
	b.rewards = append(b.rewards, rec.Reward)
	b.propensities = append(b.propensities, rec.Propensity)
	return nil
}

// Len returns the number of records appended so far.
func (b *ViewBuilder[C, D]) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rewards)
}

// Snapshot returns the current prefix as an immutable TraceView. Cost
// is O(unique contexts + unique decisions): the record columns are
// shared with the builder (their [0, Len) prefix never changes; the
// three-index slices pin capacity so neither side can grow into the
// other's view) and only the dictionaries' index maps are copied.
func (b *ViewBuilder[C, D]) Snapshot() *TraceView[C, D] {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.rewards)
	u := len(b.contexts)
	k := len(b.decisions)
	decIndex := make(map[D]int32, k)
	for d, code := range b.decIndex {
		decIndex[d] = code
	}
	return &TraceView[C, D]{
		rewards:      b.rewards[:n:n],
		propensities: b.propensities[:n:n],
		ctxCodes:     b.ctxCodes[:n:n],
		decCodes:     b.decCodes[:n:n],
		contexts:     b.contexts[:u:u],
		ctxFirst:     b.ctxFirst[:u:u],
		decisions:    b.decisions[:k:k],
		decIndex:     decIndex,
		lookup:       b.copyLookup(),
	}
}

// StreamOptions configures a StreamEval's weighting, mirroring the
// batch estimators' knobs.
type StreamOptions struct {
	// Clip caps IPS/DR importance weights (0 disables), as in
	// IPSOptions.Clip / DROptions.Clip.
	Clip float64
}

// StreamEstimates is one O(1) read of a StreamEval's aggregates: the
// three production estimators plus the Diagnose block, over the first
// N records.
type StreamEstimates struct {
	DM          Estimate
	IPS         Estimate // plain inverse propensity scoring
	SNIPS       Estimate // self-normalized IPS
	DR          Estimate // doubly robust, frozen model
	SNDR        Estimate // self-normalized DR (value within tolerance)
	Diagnostics Diagnostics
}

// StreamEval folds streaming records into running sufficient
// statistics for ONE (policy, frozen model) pair. It is not safe for
// concurrent use — the owner serializes Apply calls (drevald holds its
// ingest lock), which also fixes the accumulation order that makes
// replay bit-exact.
type StreamEval[C any, D comparable] struct {
	policy Policy[C, D]
	model  RewardModel[C, D]
	opts   StreamOptions

	n int // records folded so far

	// Per-context tables, grown as new contexts/decisions appear. dist
	// is retained so probability rows can be extended when the decision
	// dictionary grows after the context was first seen.
	dists     [][]Weighted[D]
	dmVal     []float64   // dm[u]: Σ_d µ(d|c_u)·r̂(c_u,d), zero-prob entries dropped
	probFirst [][]float64 // probFirst[u][kc], first-match-wins (estimator weights)
	probLast  [][]float64 // probLast[u][kc], last-match-wins (Diagnose weights)
	pred      [][]float64 // pred[u][kc] = model.Predict(c_u, d_kc)
	argmaxDec []D         // modal decision (first maximum) per context
	argmaxOK  []bool      // false for empty distributions

	// First invalid policy distribution, in record order (DM/DR refuse
	// to answer, exactly like the batch estimators).
	invalidRec int
	invalidErr error

	// Estimator accumulators. Sums are in record order, so they equal
	// the batch path's in-order reductions bit for bit.
	sumDM     float64       // Σ dm[u_i]
	dmWelford mathx.Welford // DM contributions (StdErr)

	sumW, sumW2 float64 // Σw, Σw² (probFirst, clipped)
	maxW        float64
	sumWR       float64       // Σ w·r
	ipsWelford  mathx.Welford // IPS contributions w·r (StdErr)
	sumWR2      float64       // Σ (w·r)²   — SNIPS influence algebra
	sumW2R      float64       // Σ w²·r     — SNIPS influence algebra

	sumWResid   float64       // Σ w·(r − pred)
	sumDR       float64       // Σ (dm + w·resid) — the batch DR summand, in order
	drWelford   mathx.Welford // plain-DR contributions (StdErr)
	sumWResid2  float64       // Σ (w·resid)²  — SN-DR algebra
	sumDMWResid float64       // Σ dm·w·resid  — SN-DR algebra
	sumDM2      float64       // Σ dm²         — SN-DR algebra

	// Diagnose accumulators (probLast, unclipped).
	dSumW, dSumW2 float64
	dMaxW         float64
	zeroSupport   int
	matches       int
	minProp       float64
}

// NewStreamEval returns an empty accumulator for one policy and one
// FROZEN reward model. The model must be a pure function of (context,
// decision) for the lifetime of the accumulator; refitting requires a
// new StreamEval (drevald re-registers the policy fingerprint).
func NewStreamEval[C any, D comparable](policy Policy[C, D], model RewardModel[C, D], opts StreamOptions) *StreamEval[C, D] {
	return &StreamEval[C, D]{policy: policy, model: model, opts: opts, invalidRec: -1}
}

// N returns how many records have been folded in.
func (s *StreamEval[C, D]) N() int { return s.n }

// Apply folds records [from, v.Len()) of a snapshot into the
// aggregates. from must equal N() — records are folded exactly once,
// in order — and v must be a snapshot of the same logical stream the
// previous Apply calls consumed (same interning order).
func (s *StreamEval[C, D]) Apply(v *TraceView[C, D], from int) error {
	if from != s.n {
		return fmt.Errorf("core: StreamEval.Apply from %d, want %d (records fold exactly once, in order)", from, s.n)
	}
	if v.Len() < from {
		return fmt.Errorf("core: StreamEval.Apply snapshot has %d records, already folded %d", v.Len(), from)
	}
	for i := from; i < v.Len(); i++ {
		s.addRecord(v, i)
	}
	return nil
}

// ensureContext lazily builds the per-context tables for code u.
func (s *StreamEval[C, D]) ensureContext(v *TraceView[C, D], u int, recIdx int) {
	for len(s.dists) <= u {
		uc := len(s.dists)
		c := v.contexts[uc]
		dist := s.policy.Distribution(c)
		s.dists = append(s.dists, dist)
		if err := ValidateDistribution(dist); err != nil && s.invalidErr == nil {
			// Contexts are interned in record order, so the first
			// invalid context seen here is the record-order first,
			// matching viewTables.firstInvalidFull.
			s.invalidRec = recIdx
			s.invalidErr = err
		}
		// dm[u]: flattened-distribution order with zero-prob entries
		// dropped, exactly like buildModelTable's generic path.
		dm := 0.0
		for _, w := range dist {
			if w.Prob == 0 {
				continue
			}
			dm += w.Prob * s.model.Predict(c, w.Decision)
		}
		s.dmVal = append(s.dmVal, dm)
		am := false
		var amDec D
		if len(dist) > 0 {
			best := dist[0]
			for _, w := range dist[1:] {
				if w.Prob > best.Prob {
					best = w
				}
			}
			amDec, am = best.Decision, true
		}
		s.argmaxDec = append(s.argmaxDec, amDec)
		s.argmaxOK = append(s.argmaxOK, am)
		s.probFirst = append(s.probFirst, nil)
		s.probLast = append(s.probLast, nil)
		s.pred = append(s.pred, nil)
	}
}

// extendRows brings context u's probability/prediction rows up to the
// current decision-dictionary size k.
func (s *StreamEval[C, D]) extendRows(v *TraceView[C, D], u, k int) {
	row := s.probFirst[u]
	if len(row) >= k {
		return
	}
	old := len(row)
	pf := append(row, make([]float64, k-old)...)
	pl := append(s.probLast[u], make([]float64, k-old)...)
	pr := append(s.pred[u], make([]float64, k-old)...)
	c := v.contexts[u]
	for kc := old; kc < k; kc++ {
		pr[kc] = s.model.Predict(c, v.decisions[kc])
	}
	// First/last-match-wins over the stored distribution, restricted to
	// the newly-visible decision codes — the same values a fresh
	// buildViewTables would produce with the larger dictionary.
	seen := make(map[int32]bool, k-old)
	for _, w := range s.dists[u] {
		kc, ok := v.decIndex[w.Decision]
		// Codes at or above k belong to decisions this extension does
		// not cover yet; a later extension fills them.
		if !ok || int(kc) < old || int(kc) >= k {
			continue
		}
		if !seen[kc] {
			seen[kc] = true
			pf[kc] = w.Prob
		}
		pl[kc] = w.Prob
	}
	s.probFirst[u], s.probLast[u], s.pred[u] = pf, pl, pr
}

func (s *StreamEval[C, D]) addRecord(v *TraceView[C, D], i int) {
	u, kc := int(v.ctxCodes[i]), int(v.decCodes[i])
	s.ensureContext(v, u, i)
	s.extendRows(v, u, kc+1)
	r := v.rewards[i]
	p := v.propensities[i]

	// DM.
	dm := s.dmVal[u]
	s.sumDM += dm
	s.dmWelford.Add(dm)

	// IPS/DR weight: probFirst, clipped.
	w := s.probFirst[u][kc] / p
	if s.opts.Clip > 0 && w > s.opts.Clip {
		w = s.opts.Clip
	}
	s.sumW += w
	s.sumW2 += w * w
	if w > s.maxW {
		s.maxW = w
	}
	wr := w * r
	s.sumWR += wr
	s.ipsWelford.Add(wr)
	s.sumWR2 += wr * wr
	s.sumW2R += w * w * r

	resid := r - s.pred[u][kc]
	wresid := w * resid
	s.sumWResid += wresid
	s.sumDR += dm + wresid
	s.drWelford.Add(dm + wresid)
	s.sumWResid2 += wresid * wresid
	s.sumDMWResid += dm * wresid
	s.sumDM2 += dm * dm

	// Diagnose: probLast, unclipped.
	dw := s.probLast[u][kc] / p
	s.dSumW += dw
	s.dSumW2 += dw * dw
	if dw == 0 {
		s.zeroSupport++
	}
	if dw > s.dMaxW {
		s.dMaxW = dw
	}
	if s.argmaxOK[u] {
		if code, ok := v.decIndex[s.argmaxDec[u]]; ok && int(code) == kc {
			s.matches++
		}
	}
	if s.n == 0 || p < s.minProp {
		s.minProp = p
	}
	s.n++
}

// ess mirrors mathx.EffectiveSampleSize's zero guard.
func ess(sum, sumSq float64) float64 {
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// Estimates reads the aggregates in O(1). DM and DR return the batch
// estimators' invalid-distribution error when one was seen; IPS,
// SNIPS and Diagnostics are always available, exactly as in the batch
// path (which never validates distributions for them).
func (s *StreamEval[C, D]) Estimates() (StreamEstimates, error) {
	if s.n == 0 {
		return StreamEstimates{}, ErrEmptyTrace
	}
	nf := float64(s.n)
	out := StreamEstimates{}

	// Diagnostics first: always computable.
	out.Diagnostics = Diagnostics{
		N:             s.n,
		ESS:           ess(s.dSumW, s.dSumW2),
		MatchRate:     float64(s.matches) / nf,
		MeanWeight:    s.dSumW / nf,
		MaxWeight:     s.dMaxW,
		ZeroSupport:   s.zeroSupport,
		MinPropensity: s.minProp,
	}

	// IPS family: no distribution-validity gate in the batch path.
	essW := ess(s.sumW, s.sumW2)
	out.IPS = Estimate{
		Value:     s.sumWR / nf,
		StdErr:    s.ipsWelford.StdErr(),
		N:         s.n,
		ESS:       essW,
		MaxWeight: s.maxW,
	}
	snips := Estimate{N: s.n, ESS: essW, MaxWeight: s.maxW}
	if s.sumW != 0 {
		snips.Value = s.sumWR / s.sumW
	}
	if wbar := s.sumW / nf; wbar > 0 && s.n > 1 {
		// Influence function infl_i = w_i(r_i − V)/w̄ expanded into the
		// tracked co-moments: Σinfl and Σinfl² give its variance.
		v := snips.Value
		sInfl := (s.sumWR - v*s.sumW) / wbar
		sInfl2 := (s.sumWR2 - 2*v*s.sumW2R + v*v*s.sumW2) / (wbar * wbar)
		varInfl := (sInfl2 - sInfl*sInfl/nf) / (nf - 1)
		if varInfl > 0 {
			snips.StdErr = math.Sqrt(varInfl) / math.Sqrt(nf)
		}
	}
	out.SNIPS = snips

	if s.invalidErr != nil {
		err := fmt.Errorf("record %d: %w", s.invalidRec, s.invalidErr)
		return out, err
	}

	out.DM = Estimate{
		Value:  s.sumDM / nf,
		StdErr: s.dmWelford.StdErr(),
		N:      s.n,
		ESS:    nf, // DM uses no weights: ESS = N, as in summarizeContributions
	}
	out.DR = Estimate{
		Value:     s.sumDR / nf,
		StdErr:    s.drWelford.StdErr(),
		N:         s.n,
		ESS:       essW,
		MaxWeight: s.maxW,
	}
	// Self-normalized DR: contrib_i = dm_i + (n/norm)·w_i·resid_i. The
	// value and variance follow from the co-moments; the regrouped sum
	// is algebraically equal to the batch mean but not bit-identical.
	norm := nf
	if s.sumW > 0 {
		norm = s.sumW
	}
	c := nf / norm
	sndr := Estimate{N: s.n, ESS: essW, MaxWeight: s.maxW}
	sndr.Value = (s.sumDM + c*s.sumWResid) / nf
	if s.n > 1 {
		sumC := s.sumDM + c*s.sumWResid
		sumC2 := s.sumDM2 + 2*c*s.sumDMWResid + c*c*s.sumWResid2
		varC := (sumC2 - sumC*sumC/nf) / (nf - 1)
		if varC > 0 {
			sndr.StdErr = math.Sqrt(varC) / math.Sqrt(nf)
		}
	}
	out.SNDR = sndr
	return out, nil
}
