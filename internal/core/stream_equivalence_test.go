package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// This file locks down the streaming engine's equivalence contract
// (the ISSUE 8 satellite): aggregates folded over N ingest batches
// reproduce the *View estimators on the full concatenated trace —
// bit-identically for every single-pass quantity (Value, ESS,
// MaxWeight, N, all Diagnostics fields), within tolerance for the
// two-pass ones (StdErr, self-normalized DR value) — with the batch
// side swept sequentially and at workers {1, 2, 8}.

func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// streamTolerance is the documented bound for the quantities whose
// batch reduction is two-pass: Welford/co-moment algebra agrees to
// roughly 1e-12 relative on well-conditioned data; 1e-9 leaves head-
// room for the SNIPS influence expansion's cancellation.
const streamTolerance = 1e-9

// batchSplits are the ingestion schedules the fold is swept over: the
// aggregates must not depend on how the stream was chopped into
// batches.
func batchSplits(n int) [][]int {
	uneven := []int{1, 2, 4, 8, 16, 32, 64, 128}
	var cuts []int
	at := 0
	for i := 0; at < n; i++ {
		at += uneven[i%len(uneven)] * (1 + i/len(uneven))
		if at > n {
			at = n
		}
		cuts = append(cuts, at)
	}
	return [][]int{
		{n},            // one shot
		halves(n),      // two halves
		everyK(n, 1),   // record at a time
		everyK(n, 137), // fixed odd stride
		cuts,           // growing uneven batches
	}
}

func halves(n int) []int { return []int{n / 2, n} }

func everyK(n, k int) []int {
	var out []int
	for at := k; at < n; at += k {
		out = append(out, at)
	}
	return append(out, n)
}

// foldStream pushes tr through a ViewBuilder according to the batch
// cut points and folds each prefix into fresh StreamEvals (one per
// clip option), returning the final snapshot and accumulators.
func foldStream(t *testing.T, tr Trace[float64, int], np Policy[float64, int], model RewardModel[float64, int], cuts []int) (*TraceView[float64, int], *StreamEval[float64, int], *StreamEval[float64, int]) {
	t.Helper()
	b := NewViewBuilder[float64, int]()
	se := NewStreamEval(np, model, StreamOptions{})
	seClip := NewStreamEval(np, model, StreamOptions{Clip: 3})
	prev := 0
	for _, cut := range cuts {
		for i := prev; i < cut; i++ {
			if err := b.Append(tr[i]); err != nil {
				t.Fatalf("Append record %d: %v", i, err)
			}
		}
		snap := b.Snapshot()
		if err := se.Apply(snap, prev); err != nil {
			t.Fatalf("Apply at %d: %v", prev, err)
		}
		if err := seClip.Apply(snap, prev); err != nil {
			t.Fatalf("Apply(clip) at %d: %v", prev, err)
		}
		prev = cut
	}
	return b.Snapshot(), se, seClip
}

// assertEstimate compares a streaming estimate against the batch
// reference: exact fields bitwise, StdErr within tolerance, Value
// optionally within tolerance (self-normalized DR).
func assertEstimate(t *testing.T, label string, got, want Estimate, valueExact bool) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N %d != %d", label, got.N, want.N)
	}
	if valueExact {
		if !bitsEqual(got.Value, want.Value) {
			t.Fatalf("%s: Value %v (%x) != %v (%x)", label, got.Value, math.Float64bits(got.Value), want.Value, math.Float64bits(want.Value))
		}
	} else if !closeRel(got.Value, want.Value, streamTolerance) {
		t.Fatalf("%s: Value %v !~ %v", label, got.Value, want.Value)
	}
	if !bitsEqual(got.ESS, want.ESS) {
		t.Fatalf("%s: ESS %v != %v", label, got.ESS, want.ESS)
	}
	if !bitsEqual(got.MaxWeight, want.MaxWeight) {
		t.Fatalf("%s: MaxWeight %v != %v", label, got.MaxWeight, want.MaxWeight)
	}
	if !closeRel(got.StdErr, want.StdErr, streamTolerance) {
		t.Fatalf("%s: StdErr %v !~ %v", label, got.StdErr, want.StdErr)
	}
}

func TestStreamEvalMatchesBatchEstimators(t *testing.T) {
	const n = 5000
	for shape, mk := range equivalenceCases(n) {
		tr, np, pureModel := mk(n)

		// Two frozen models: a pure function, and a table model fit on
		// the first half of the stream (drevald's registration flow).
		half := NewViewBuilder[float64, int]()
		for i := 0; i < n/2; i++ {
			if err := half.Append(tr[i]); err != nil {
				t.Fatalf("prefix Append: %v", err)
			}
		}
		tableModel := FitTableView(half.Snapshot())

		models := map[string]RewardModel[float64, int]{
			"pure":  pureModel,
			"table": tableModel,
		}
		for mname, model := range models {
			for si, cuts := range batchSplits(n) {
				v, se, seClip := foldStream(t, tr, np, model, cuts)
				got, err := se.Estimates()
				if err != nil {
					t.Fatalf("%s/%s split %d: Estimates: %v", shape, mname, si, err)
				}
				gotClip, err := seClip.Estimates()
				if err != nil {
					t.Fatalf("%s/%s split %d: Estimates(clip): %v", shape, mname, si, err)
				}

				// Batch side: sequential, then workers 1/2/8.
				for _, w := range append([]int{0}, workerCounts...) {
					threshold := 64
					if w == 0 {
						w, threshold = 1, n+1
					}
					withParallelism(t, w, threshold, func() {
						pfx := fmt.Sprintf("%s/%s split=%d workers=%d", shape, mname, si, w)

						dm, err := DirectMethodView(v, np, model)
						if err != nil {
							t.Fatalf("%s DM: %v", pfx, err)
						}
						assertEstimate(t, pfx+" DM", got.DM, dm, true)

						ips, err := IPSView(v, np, IPSOptions{})
						if err != nil {
							t.Fatalf("%s IPS: %v", pfx, err)
						}
						assertEstimate(t, pfx+" IPS", got.IPS, ips, true)

						ipsClip, err := IPSView(v, np, IPSOptions{Clip: 3})
						if err != nil {
							t.Fatalf("%s IPS clip: %v", pfx, err)
						}
						assertEstimate(t, pfx+" IPS clip", gotClip.IPS, ipsClip, true)

						snips, err := IPSView(v, np, IPSOptions{SelfNormalize: true})
						if err != nil {
							t.Fatalf("%s SNIPS: %v", pfx, err)
						}
						assertEstimate(t, pfx+" SNIPS", got.SNIPS, snips, true)

						dr, err := DoublyRobustView(v, np, model, DROptions{})
						if err != nil {
							t.Fatalf("%s DR: %v", pfx, err)
						}
						assertEstimate(t, pfx+" DR", got.DR, dr, true)

						drClip, err := DoublyRobustView(v, np, model, DROptions{Clip: 3})
						if err != nil {
							t.Fatalf("%s DR clip: %v", pfx, err)
						}
						assertEstimate(t, pfx+" DR clip", gotClip.DR, drClip, true)

						sndr, err := DoublyRobustView(v, np, model, DROptions{SelfNormalize: true})
						if err != nil {
							t.Fatalf("%s SNDR: %v", pfx, err)
						}
						// The self-normalized value regroups the final
						// n/Σw factor: tolerance, not bits.
						assertEstimate(t, pfx+" SNDR", got.SNDR, sndr, false)

						diag, err := DiagnoseView(v, np)
						if err != nil {
							t.Fatalf("%s Diagnose: %v", pfx, err)
						}
						if got.Diagnostics != diag {
							t.Fatalf("%s Diagnose: %+v != %+v", pfx, got.Diagnostics, diag)
						}
					})
				}
			}
		}
	}
}

// TestStreamEvalReplayBitExact: two accumulators fed the same records
// under different batch schedules end bit-identical in EVERY field,
// StdErr included — the property WAL replay relies on.
func TestStreamEvalReplayBitExact(t *testing.T) {
	const n = 3000
	tr, np, model := quantizedTrace(n)
	splits := batchSplits(n)
	_, ref, refClip := foldStream(t, tr, np, model, splits[0])
	want, err := ref.Estimates()
	if err != nil {
		t.Fatalf("reference Estimates: %v", err)
	}
	wantClip, err := refClip.Estimates()
	if err != nil {
		t.Fatalf("reference Estimates(clip): %v", err)
	}
	for si, cuts := range splits[1:] {
		_, se, seClip := foldStream(t, tr, np, model, cuts)
		got, err := se.Estimates()
		if err != nil {
			t.Fatalf("split %d: %v", si, err)
		}
		gotClip, err := seClip.Estimates()
		if err != nil {
			t.Fatalf("split %d (clip): %v", si, err)
		}
		if got != want {
			t.Fatalf("split %d: %+v != %+v", si, got, want)
		}
		if gotClip != wantClip {
			t.Fatalf("split %d (clip): %+v != %+v", si, gotClip, wantClip)
		}
	}
}

// TestViewBuilderSnapshotEqualsBatchView: the builder's final snapshot
// must be indistinguishable from NewTraceView over the same records.
func TestViewBuilderSnapshotEqualsBatchView(t *testing.T) {
	const n = 2000
	tr, _, _ := quantizedTrace(n)
	b := NewViewBuilder[float64, int]()
	for i, rec := range tr {
		if err := b.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	snap := b.Snapshot()
	want, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	if snap.Len() != want.Len() || snap.NumContexts() != want.NumContexts() || snap.NumDecisions() != want.NumDecisions() {
		t.Fatalf("shape mismatch: (%d,%d,%d) != (%d,%d,%d)",
			snap.Len(), snap.NumContexts(), snap.NumDecisions(),
			want.Len(), want.NumContexts(), want.NumDecisions())
	}
	for i := 0; i < n; i++ {
		if snap.At(i) != want.At(i) {
			t.Fatalf("record %d: %+v != %+v", i, snap.At(i), want.At(i))
		}
	}
	// The lookup closure must resolve every interned context.
	for u := 0; u < snap.NumContexts(); u++ {
		c := snap.ContextValue(u)
		if code, ok := snap.lookup(c); !ok || int(code) != u {
			t.Fatalf("lookup(%v) = (%d,%v), want (%d,true)", c, code, ok, u)
		}
	}
}

// TestViewBuilderValidationMatchesBuildView: Append's rejection text is
// byte-identical to buildView's, at the same record index.
func TestViewBuilderValidationMatchesBuildView(t *testing.T) {
	good := Record[float64, int]{Context: 0.5, Decision: 1, Reward: 1, Propensity: 0.5}
	cases := []Record[float64, int]{
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: 0},
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: -0.2},
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: 1.5},
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: math.NaN()},
		{Context: 0.1, Decision: 0, Reward: math.NaN(), Propensity: 0.5},
		{Context: 0.1, Decision: 0, Reward: math.Inf(1), Propensity: 0.5},
		{Context: 0.1, Decision: 0, Reward: math.Inf(-1), Propensity: 0.5},
	}
	for ci, bad := range cases {
		// Two good records first, so the failing index is non-zero.
		tr := Trace[float64, int]{good, good, bad}
		_, wantErr := NewTraceView(tr)
		if wantErr == nil {
			t.Fatalf("case %d: batch accepted bad record", ci)
		}
		b := NewViewBuilder[float64, int]()
		for i := 0; i < 2; i++ {
			if err := b.Append(good); err != nil {
				t.Fatalf("case %d: good Append: %v", ci, err)
			}
		}
		err := b.Append(bad)
		if err == nil {
			t.Fatalf("case %d: builder accepted bad record", ci)
		}
		if err.Error() != wantErr.Error() {
			t.Fatalf("case %d: %q != batch %q", ci, err.Error(), wantErr.Error())
		}
		// Nothing appended: the builder still has 2 records.
		if b.Len() != 2 {
			t.Fatalf("case %d: Len %d after rejected append", ci, b.Len())
		}
	}
}

// badDistPolicy returns an invalid distribution for one context value.
type badDistPolicy struct{ bad float64 }

func (p badDistPolicy) Distribution(c float64) []Weighted[int] {
	if c == p.bad {
		return []Weighted[int]{{Decision: 0, Prob: 0.4}} // sums to 0.4
	}
	return []Weighted[int]{{Decision: 0, Prob: 0.5}, {Decision: 1, Prob: 0.5}}
}

// TestStreamEvalInvalidDistributionMatchesBatch: DM/DR surface the
// batch estimators' exact error; IPS and Diagnose stay available.
func TestStreamEvalInvalidDistributionMatchesBatch(t *testing.T) {
	tr := Trace[float64, int]{
		{Context: 0.1, Decision: 0, Reward: 1, Propensity: 0.5},
		{Context: 0.2, Decision: 1, Reward: 0, Propensity: 0.5},
		{Context: 0.3, Decision: 0, Reward: 1, Propensity: 0.5}, // the bad context, record 2
		{Context: 0.1, Decision: 1, Reward: 0, Propensity: 0.5},
	}
	np := badDistPolicy{bad: 0.3}
	model := RewardFunc[float64, int](func(c float64, d int) float64 { return c * float64(d) })

	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	_, wantErr := DirectMethodView(v, np, model)
	if wantErr == nil {
		t.Fatal("batch DM accepted invalid distribution")
	}
	wantIPS, err := IPSView(v, np, IPSOptions{})
	if err != nil {
		t.Fatalf("batch IPS: %v", err)
	}
	wantDiag, err := DiagnoseView(v, np)
	if err != nil {
		t.Fatalf("batch Diagnose: %v", err)
	}

	b := NewViewBuilder[float64, int]()
	se := NewStreamEval[float64, int](np, model, StreamOptions{})
	for _, rec := range tr {
		if err := b.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := se.Apply(b.Snapshot(), 0); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := se.Estimates()
	if err == nil {
		t.Fatal("stream Estimates accepted invalid distribution")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("error %q != batch %q", err.Error(), wantErr.Error())
	}
	// The partial result still carries IPS and Diagnostics.
	assertEstimate(t, "IPS under invalid dist", got.IPS, wantIPS, true)
	if got.Diagnostics != wantDiag {
		t.Fatalf("Diagnose under invalid dist: %+v != %+v", got.Diagnostics, wantDiag)
	}
}

func TestStreamEvalApplyContract(t *testing.T) {
	tr, np, model := quantizedTrace(10)
	b := NewViewBuilder[float64, int]()
	for _, rec := range tr {
		if err := b.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	se := NewStreamEval(np, model, StreamOptions{})
	snap := b.Snapshot()
	if err := se.Apply(snap, 3); err == nil {
		t.Fatal("Apply accepted a gap (from=3 on a fresh accumulator)")
	}
	if err := se.Apply(snap, 0); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := se.Apply(snap, 5); err == nil {
		t.Fatal("Apply accepted a rewind (from=5 after folding 10)")
	}
	// Re-applying the same frontier is a no-op.
	if err := se.Apply(snap, 10); err != nil {
		t.Fatalf("Apply at frontier: %v", err)
	}
	if se.N() != 10 {
		t.Fatalf("N = %d, want 10", se.N())
	}
	if _, err := NewStreamEval(np, model, StreamOptions{}).Estimates(); err != ErrEmptyTrace {
		t.Fatalf("empty Estimates error = %v, want ErrEmptyTrace", err)
	}
}

// TestViewBuilderConcurrentSnapshotAppend runs appends and snapshot
// readers concurrently under -race: snapshots must stay internally
// consistent (codes in range, estimators runnable) while the builder
// keeps growing.
func TestViewBuilderConcurrentSnapshotAppend(t *testing.T) {
	const n = 4000
	tr, np, model := quantizedTrace(n)
	b := NewViewBuilder[float64, int]()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range tr {
			if err := b.Append(rec); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				snap := b.Snapshot()
				if snap.Len() == 0 {
					continue
				}
				for i := 0; i < snap.Len(); i++ {
					if snap.ContextCode(i) >= snap.NumContexts() || snap.DecisionCode(i) >= snap.NumDecisions() {
						t.Errorf("snapshot code out of range at %d", i)
						return
					}
				}
				if _, err := DoublyRobustView(snap, np, model, DROptions{}); err != nil {
					t.Errorf("DR on snapshot: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles the final snapshot matches the batch view.
	snap := b.Snapshot()
	want, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	gotDR, err := DoublyRobustView(snap, np, model, DROptions{})
	if err != nil {
		t.Fatalf("DR on final snapshot: %v", err)
	}
	wantDR, err := DoublyRobustView(want, np, model, DROptions{})
	if err != nil {
		t.Fatalf("DR on batch view: %v", err)
	}
	if gotDR != wantDR {
		t.Fatalf("final snapshot DR %+v != batch %+v", gotDR, wantDR)
	}
}

// TestViewBuilderKeyedMatchesKeyedView mirrors the snapshot-equality
// check for the keyed constructor (drevald's featurized contexts).
func TestViewBuilderKeyedMatchesKeyedView(t *testing.T) {
	key := func(c float64) string { return fmt.Sprintf("%.3f", c) }
	const n = 1500
	tr, np, model := quantizedTrace(n)
	b := NewViewBuilderKeyed[float64, int](key)
	se := NewStreamEval(np, model, StreamOptions{})
	for i, rec := range tr {
		if err := b.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	snap := b.Snapshot()
	if err := se.Apply(snap, 0); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want, err := NewTraceViewKeyed(tr, key)
	if err != nil {
		t.Fatalf("NewTraceViewKeyed: %v", err)
	}
	got, err := se.Estimates()
	if err != nil {
		t.Fatalf("Estimates: %v", err)
	}
	wantDR, err := DoublyRobustView(want, np, model, DROptions{})
	if err != nil {
		t.Fatalf("batch DR: %v", err)
	}
	assertEstimate(t, "keyed DR", got.DR, wantDR, true)
	wantDiag, err := DiagnoseView(want, np)
	if err != nil {
		t.Fatalf("batch Diagnose: %v", err)
	}
	if got.Diagnostics != wantDiag {
		t.Fatalf("keyed Diagnose: %+v != %+v", got.Diagnostics, wantDiag)
	}
}
