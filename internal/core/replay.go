package core

import (
	"context"

	"drnet/internal/mathx"
)

// HistoryPolicy is a non-stationary policy: its decision distribution for
// the current context may depend on the history of (context, decision,
// reward) triples it has accepted so far. Most real networking policies
// are of this kind (§4.1 "stationarity of policies") — e.g. an ABR
// algorithm whose bitrate choice depends on previously observed
// throughput.
type HistoryPolicy[C any, D comparable] interface {
	// DistributionWithHistory returns the decision distribution for
	// context c given the policy's accepted history.
	DistributionWithHistory(history Trace[C, D], c C) []Weighted[D]
}

// Stationary adapts a history-agnostic Policy into a HistoryPolicy.
type Stationary[C any, D comparable] struct {
	Policy Policy[C, D]
}

// DistributionWithHistory implements HistoryPolicy by ignoring history.
func (s Stationary[C, D]) DistributionWithHistory(_ Trace[C, D], c C) []Weighted[D] {
	return s.Policy.Distribution(c)
}

// HistoryFuncPolicy adapts a function into a HistoryPolicy.
type HistoryFuncPolicy[C any, D comparable] func(history Trace[C, D], c C) []Weighted[D]

// DistributionWithHistory implements HistoryPolicy.
func (f HistoryFuncPolicy[C, D]) DistributionWithHistory(h Trace[C, D], c C) []Weighted[D] {
	return f(h, c)
}

// ReplayResult reports the outcome of ReplayDR.
type ReplayResult struct {
	Estimate Estimate
	// Accepted is the number of trace records on which the sampled new
	// policy decision matched the logged decision (|g_{n+1}| in the
	// paper's §4.2 algorithm).
	Accepted int
	// Skipped is the number of records rejected by the replayer.
	Skipped int
}

// ReplayDR evaluates a non-stationary new policy on a trace using the
// paper's §4.2 rejection-sampling extension of DR (after Li et al.'s
// contextual-bandit replayer):
//
// For each record k, sample d' ~ µ_new(·|c_k, g_k) where g_k is the
// history of previously accepted records. If d' equals the logged
// decision d_k, update the running DR sum with the per-client Eq. 2 term
// and append the record to g; otherwise skip the record. The estimate is
// the accumulated sum divided by the number of accepted records.
//
// When the target policy is stationary this estimator coincides in
// expectation with DoublyRobust, which TestReplayMatchesDRStationary
// verifies.
func ReplayDR[C any, D comparable](t Trace[C, D], newPolicy HistoryPolicy[C, D], model RewardModel[C, D], rng *mathx.RNG) (ReplayResult, error) {
	return ReplayDRCtx(context.Background(), t, newPolicy, model, rng)
}

// ReplayDRCtx is ReplayDR with cooperative cancellation. The replayer
// is inherently sequential (each record's distribution depends on the
// history accepted so far), so ctx is checked once per chunk of
// records; a cancelled ctx stops the replay within one chunk boundary
// and returns ctx's error.
func ReplayDRCtx[C any, D comparable](ctx context.Context, t Trace[C, D], newPolicy HistoryPolicy[C, D], model RewardModel[C, D], rng *mathx.RNG) (ReplayResult, error) {
	if len(t) == 0 {
		return ReplayResult{}, ErrEmptyTrace
	}
	if err := t.Validate(); err != nil {
		return ReplayResult{}, err
	}
	var accepted Trace[C, D]
	var contrib []float64
	var weights []float64
	maxW := 0.0
	for k, rec := range t {
		if k%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return ReplayResult{}, err
			}
		}
		dist := newPolicy.DistributionWithHistory(accepted, rec.Context)
		if err := ValidateDistribution(dist); err != nil {
			return ReplayResult{}, err
		}
		probs := make([]float64, len(dist))
		for i, w := range dist {
			probs[i] = w.Prob
		}
		sampled := dist[rng.Categorical(probs)].Decision
		if sampled != rec.Decision {
			continue
		}
		// DM part: Σ_d µ_new(d|c_k, g_k) · r̂(c_k, d).
		dm := 0.0
		var pNew float64
		for _, w := range dist {
			if w.Prob == 0 {
				continue
			}
			dm += w.Prob * model.Predict(rec.Context, w.Decision)
			if w.Decision == rec.Decision {
				pNew = w.Prob
			}
		}
		w := pNew / rec.Propensity
		contrib = append(contrib, dm+w*(rec.Reward-model.Predict(rec.Context, rec.Decision)))
		weights = append(weights, w)
		if w > maxW {
			maxW = w
		}
		accepted = append(accepted, rec)
	}
	if len(accepted) == 0 {
		return ReplayResult{Skipped: len(t)}, ErrNoMatches
	}
	est := summarizeContributions(contrib)
	est.ESS = mathx.EffectiveSampleSize(weights)
	est.MaxWeight = maxW
	return ReplayResult{
		Estimate: est,
		Accepted: len(accepted),
		Skipped:  len(t) - len(accepted),
	}, nil
}
