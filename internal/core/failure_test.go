package core

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

// Failure-injection tests: adversarial traces and models must degrade
// into errors or finite estimates — never panics or silent NaNs.

func TestEstimatorsSurviveExtremeRewardOutliers(t *testing.T) {
	b := newTestBandit(501, 0.1)
	tr, _ := collectBanditTrace(b, 300, 0.5)
	// Inject a handful of absurd outliers (a broken collector).
	tr[10].Reward = 1e12
	tr[20].Reward = -1e12
	np := banditNewPolicy(0.2)
	model := RewardFunc[float64, int](b.trueReward)
	for name, f := range map[string]func() (Estimate, error){
		"DM":  func() (Estimate, error) { return DirectMethod(tr, np, model) },
		"IPS": func() (Estimate, error) { return IPS(tr, np, IPSOptions{}) },
		"DR":  func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{}) },
		"SW":  func() (Estimate, error) { return SwitchDR(tr, np, model, SwitchOptions{}) },
	} {
		est, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(est.Value) || math.IsInf(est.Value, 0) {
			t.Fatalf("%s produced non-finite value %g", name, est.Value)
		}
	}
	// Self-normalized IPS stays inside the reward range even with the
	// outliers present (they bound the range).
	sn, err := IPS(tr, np, IPSOptions{SelfNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Value > 1e12 || sn.Value < -1e12 {
		t.Fatalf("SNIPS left the reward range: %g", sn.Value)
	}
}

func TestEstimatorsSurvivePropensityFloor(t *testing.T) {
	// All propensities at the validity boundary (tiny but legal):
	// weights explode but everything stays finite and diagnostics flag
	// the problem.
	b := newTestBandit(502, 0.1)
	tr, _ := collectBanditTrace(b, 200, 0.5)
	for i := range tr {
		tr[i].Propensity = 1e-9
	}
	np := banditNewPolicy(0.2)
	est, err := IPS(tr, np, IPSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.Value) || math.IsInf(est.Value, 0) {
		t.Fatalf("non-finite value %g", est.Value)
	}
	if est.MaxWeight < 1e6 {
		t.Fatalf("expected exploded weights, got max %g", est.MaxWeight)
	}
	diag, err := Diagnose(tr, np)
	if err != nil {
		t.Fatal(err)
	}
	if diag.ESS > float64(diag.N)/2 {
		t.Log("warning: ESS did not flag the floor propensities (weights are uniform, so Kish ESS is high — MaxWeight is the signal here)")
	}
	if diag.MinPropensity != 1e-9 {
		t.Fatalf("MinPropensity = %g", diag.MinPropensity)
	}
}

func TestNaNModelIsSurfacedNotHidden(t *testing.T) {
	// A reward model that returns NaN (e.g. divide-by-zero in a
	// downstream predictor) must surface as a NaN estimate the caller
	// can detect — silent replacement would hide the bug.
	b := newTestBandit(503, 0.1)
	tr, _ := collectBanditTrace(b, 50, 0.5)
	np := banditNewPolicy(0.2)
	bad := RewardFunc[float64, int](func(float64, int) float64 { return math.NaN() })
	est, err := DirectMethod(tr, np, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(est.Value) {
		t.Fatalf("NaN model should produce a NaN estimate, got %g", est.Value)
	}
}

func TestCrossFitSurvivesPathologicalFoldOrder(t *testing.T) {
	// Adversarial record order: all of one decision first. Interleaved
	// fold assignment must still give both folds both decisions.
	b := newTestBandit(504, 0.1)
	tr, _ := collectBanditTrace(b, 400, 0.8)
	// Sort: decision 0 records first.
	var sorted Trace[float64, int]
	for _, rec := range tr {
		if rec.Decision == 0 {
			sorted = append(sorted, rec)
		}
	}
	for _, rec := range tr {
		if rec.Decision != 0 {
			sorted = append(sorted, rec)
		}
	}
	np := banditNewPolicy(0.2)
	fit := func(part Trace[float64, int]) (RewardModel[float64, int], error) {
		return FitTable(part, func(c float64, d int) string {
			return string(rune('0' + d))
		}), nil
	}
	est, err := CrossFitDR(sorted, np, fit, 2, DROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.Value) {
		t.Fatal("NaN estimate")
	}
}

func TestReplaySurvivesAdversarialHistoryPolicy(t *testing.T) {
	// A history policy that returns an invalid distribution must error,
	// not panic.
	b := newTestBandit(505, 0.1)
	tr, _ := collectBanditTrace(b, 50, 0.5)
	rng := mathx.NewRNG(1)
	bad := HistoryFuncPolicy[float64, int](func(Trace[float64, int], float64) []Weighted[int] {
		return []Weighted[int]{{Decision: 0, Prob: 0.3}} // sums to 0.3
	})
	if _, err := ReplayDR[float64, int](tr, bad, ConstantModel[float64, int]{}, rng); err == nil {
		t.Fatal("invalid distribution should error")
	}
}

func TestBootstrapSurvivesDegenerateTrace(t *testing.T) {
	// A single-record trace: bootstrap resamples are all copies; the CI
	// must collapse rather than error.
	tr := Trace[float64, int]{{Context: 0.5, Decision: 2, Reward: 1.5, Propensity: 0.5}}
	np := banditNewPolicy(0.2)
	rng := mathx.NewRNG(2)
	ci, err := Bootstrap(tr, func(t2 Trace[float64, int]) (Estimate, error) {
		return IPS(t2, np, IPSOptions{})
	}, rng, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Hi-ci.Lo > 1e-12 {
		t.Fatalf("degenerate trace should give a (numerically) point interval, got [%g, %g]", ci.Lo, ci.Hi)
	}
}

func TestSelectBestSurvivesTiedCandidates(t *testing.T) {
	// Identical candidates: ranking must be stable and complete.
	b := newTestBandit(506, 0.1)
	tr, _ := collectBanditTrace(b, 300, 0.5)
	rng := mathx.NewRNG(3)
	same := banditNewPolicy(0.2)
	cands := []Candidate[float64, int]{
		{Name: "a", Policy: same},
		{Name: "b", Policy: same},
	}
	ranked, err := SelectBest(tr, RewardFunc[float64, int](b.trueReward), cands, rng, SelectOptions{Bootstrap: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("kept %d", len(ranked))
	}
	if ranked[0].Candidate.Name != "a" {
		t.Fatal("stable sort violated for tied candidates")
	}
	if !Overlaps(ranked) {
		t.Fatal("identical candidates must overlap")
	}
}
