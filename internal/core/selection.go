package core

import (
	"errors"
	"fmt"
	"sort"

	"drnet/internal/mathx"
)

// Candidate is a named policy submitted to SelectBest.
type Candidate[C any, D comparable] struct {
	Name   string
	Policy Policy[C, D]
}

// Ranked is one row of a policy-selection result.
type Ranked[C any, D comparable] struct {
	Candidate Candidate[C, D]
	// Estimate is the candidate's off-policy estimate.
	Estimate Estimate
	// Interval is the bootstrap confidence interval of the estimate.
	Interval Interval
	// Diagnostics describes the trace's support for this candidate.
	Diagnostics Diagnostics
}

// SelectOptions configures SelectBest.
type SelectOptions struct {
	// DR options applied to every candidate.
	DR DROptions
	// Bootstrap resamples per candidate (default 200).
	Bootstrap int
	// Level is the confidence level (default 0.95).
	Level float64
	// MinESS rejects candidates whose effective sample size is below
	// this threshold (default 10): their estimates rest on too few
	// effective records to be trusted, which is exactly the Figure 5
	// failure mode.
	MinESS float64
}

// SelectBest is the end-to-end workflow of the paper's Figure 1: given
// a logged trace, a reward model and a set of candidate policies, it
// estimates each candidate's value with DR, attaches bootstrap
// intervals and overlap diagnostics, filters out candidates the trace
// cannot support, and returns the survivors sorted by estimated value
// (best first).
//
// It returns ErrNoSupportedCandidates when the trace supports none of
// the candidates — the correct answer when an operator asks a trace a
// question it cannot answer.
func SelectBest[C any, D comparable](t Trace[C, D], model RewardModel[C, D], candidates []Candidate[C, D], rng *mathx.RNG, opts SelectOptions) ([]Ranked[C, D], error) {
	if len(t) == 0 {
		return nil, ErrEmptyTrace
	}
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidate policies")
	}
	if opts.Bootstrap <= 0 {
		opts.Bootstrap = 200
	}
	if opts.Level <= 0 || opts.Level >= 1 {
		opts.Level = 0.95
	}
	if opts.MinESS <= 0 {
		opts.MinESS = 10
	}
	var out []Ranked[C, D]
	for _, cand := range candidates {
		diag, err := Diagnose(t, cand.Policy)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", cand.Name, err)
		}
		est, err := DoublyRobust(t, cand.Policy, model, opts.DR)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", cand.Name, err)
		}
		if est.ESS < opts.MinESS {
			continue // unsupported by this trace
		}
		policy := cand.Policy
		ci, err := Bootstrap(t, func(rt Trace[C, D]) (Estimate, error) {
			return DoublyRobust(rt, policy, model, opts.DR)
		}, rng, opts.Bootstrap, opts.Level)
		if err != nil {
			return nil, fmt.Errorf("core: candidate %q: %w", cand.Name, err)
		}
		out = append(out, Ranked[C, D]{
			Candidate:   cand,
			Estimate:    est,
			Interval:    ci,
			Diagnostics: diag,
		})
	}
	if len(out) == 0 {
		return nil, ErrNoSupportedCandidates
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Estimate.Value > out[j].Estimate.Value
	})
	return out, nil
}

// ErrNoSupportedCandidates is returned by SelectBest when every
// candidate fails the effective-sample-size screen.
var ErrNoSupportedCandidates = errors.New("core: trace supports none of the candidate policies (ESS below threshold)")

// Overlaps reports whether the top candidate's interval overlaps the
// runner-up's — i.e. whether the selection is statistically ambiguous
// and the operator should gather more (or more randomized) data before
// acting.
func Overlaps[C any, D comparable](ranked []Ranked[C, D]) bool {
	if len(ranked) < 2 {
		return false
	}
	best, second := ranked[0].Interval, ranked[1].Interval
	return best.Lo <= second.Hi && second.Lo <= best.Hi
}
