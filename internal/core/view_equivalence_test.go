package core

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"drnet/internal/mathx"
)

// quantizedTrace is determinismTrace with contexts snapped to a small
// grid, so interning actually collapses records (U ≪ n) and the view's
// per-unique-context tables are exercised on the sharing path rather
// than degenerating to one context per record.
func quantizedTrace(n int) (Trace[float64, int], Policy[float64, int], RewardModel[float64, int]) {
	tr, np, model := determinismTrace(n)
	out := make(Trace[float64, int], len(tr))
	copy(out, tr)
	for i := range out {
		out[i].Context = float64(int(out[i].Context*16)) / 16
	}
	return out, np, model
}

// equivalenceCases are the trace shapes every bit-equivalence test
// sweeps: near-unique contexts (dictionary ≈ n) and heavily shared
// contexts (dictionary ≪ n).
func equivalenceCases(n int) map[string]func(int) (Trace[float64, int], Policy[float64, int], RewardModel[float64, int]) {
	return map[string]func(int) (Trace[float64, int], Policy[float64, int], RewardModel[float64, int]){
		"unique":    determinismTrace,
		"quantized": quantizedTrace,
	}
}

// TestViewEstimatorsBitIdenticalToSlice is the core equivalence
// contract: every estimator returns the exact same Estimate — all
// float fields bit-for-bit — from the columnar view as from the record
// slice, sequentially and chunked over 1, 2 and 8 workers.
func TestViewEstimatorsBitIdenticalToSlice(t *testing.T) {
	const n = 5000
	for shape, mk := range equivalenceCases(n) {
		tr, np, model := mk(n)
		v, err := NewTraceView(tr)
		if err != nil {
			t.Fatalf("%s: NewTraceView: %v", shape, err)
		}
		type variant struct {
			name  string
			slice func() (Estimate, error)
			view  func() (Estimate, error)
		}
		variants := []variant{
			{"DM",
				func() (Estimate, error) { return DirectMethod(tr, np, model) },
				func() (Estimate, error) { return DirectMethodView(v, np, model) }},
			{"IPS",
				func() (Estimate, error) { return IPS(tr, np, IPSOptions{}) },
				func() (Estimate, error) { return IPSView(v, np, IPSOptions{}) }},
			{"IPS clip",
				func() (Estimate, error) { return IPS(tr, np, IPSOptions{Clip: 3}) },
				func() (Estimate, error) { return IPSView(v, np, IPSOptions{Clip: 3}) }},
			{"SNIPS",
				func() (Estimate, error) { return IPS(tr, np, IPSOptions{SelfNormalize: true}) },
				func() (Estimate, error) { return IPSView(v, np, IPSOptions{SelfNormalize: true}) }},
			{"DR",
				func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{}) },
				func() (Estimate, error) { return DoublyRobustView(v, np, model, DROptions{}) }},
			{"DR clip+norm",
				func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{Clip: 3, SelfNormalize: true}) },
				func() (Estimate, error) {
					return DoublyRobustView(v, np, model, DROptions{Clip: 3, SelfNormalize: true})
				}},
			{"SwitchDR default tau",
				func() (Estimate, error) { return SwitchDR(tr, np, model, SwitchOptions{}) },
				func() (Estimate, error) { return SwitchDRView(v, np, model, SwitchOptions{}) }},
			{"SwitchDR tau=2",
				func() (Estimate, error) { return SwitchDR(tr, np, model, SwitchOptions{Tau: 2}) },
				func() (Estimate, error) { return SwitchDRView(v, np, model, SwitchOptions{Tau: 2}) }},
			{"MatchedRewards",
				func() (Estimate, error) { return MatchedRewards(tr, np) },
				func() (Estimate, error) { return MatchedRewardsView(v, np) }},
		}
		for _, vr := range variants {
			var want Estimate
			withParallelism(t, 1, n+1, func() {
				var err error
				want, err = vr.slice()
				if err != nil {
					t.Fatalf("%s/%s slice: %v", shape, vr.name, err)
				}
			})
			// Sequential view path, then chunked at each worker count.
			for _, w := range append([]int{0}, workerCounts...) {
				threshold := 64
				if w == 0 {
					w, threshold = 1, n+1
				}
				withParallelism(t, w, threshold, func() {
					got, err := vr.view()
					if err != nil {
						t.Fatalf("%s/%s view workers=%d: %v", shape, vr.name, w, err)
					}
					if got != want {
						t.Fatalf("%s/%s view workers=%d: %+v != slice %+v", shape, vr.name, w, got, want)
					}
				})
			}
		}
	}
}

// TestViewDiagnoseBitIdentical asserts DiagnoseView reproduces
// Diagnose field-for-field on both trace shapes.
func TestViewDiagnoseBitIdentical(t *testing.T) {
	const n = 5000
	for shape, mk := range equivalenceCases(n) {
		tr, np, _ := mk(n)
		v, err := NewTraceView(tr)
		if err != nil {
			t.Fatalf("%s: NewTraceView: %v", shape, err)
		}
		want, err := Diagnose(tr, np)
		if err != nil {
			t.Fatalf("%s: Diagnose: %v", shape, err)
		}
		got, err := DiagnoseView(v, np)
		if err != nil {
			t.Fatalf("%s: DiagnoseView: %v", shape, err)
		}
		if got != want {
			t.Fatalf("%s: DiagnoseView %+v != Diagnose %+v", shape, got, want)
		}
	}
}

// TestFitTableViewMatchesFitTable asserts the columnar table model is
// the slice table model: same predictions on every logged pair, same
// default, and bit-identical DM/DR estimates when plugged in.
func TestFitTableViewMatchesFitTable(t *testing.T) {
	const n = 3000
	tr, np, _ := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	key := func(c float64, d int) string {
		return strconv.FormatFloat(c, 'g', -1, 64) + "|" + strconv.Itoa(d)
	}
	sliceModel := FitTable(tr, key)
	viewModel := FitTableView(v)
	for i, rec := range tr {
		if got, want := viewModel.Predict(rec.Context, rec.Decision), sliceModel.Predict(rec.Context, rec.Decision); got != want {
			t.Fatalf("record %d: view predict %v != slice predict %v", i, got, want)
		}
	}
	// Unseen pairs fall back to the same default.
	if got, want := viewModel.Predict(-123.5, 0), sliceModel.Predict(-123.5, 0); got != want {
		t.Fatalf("default: view %v != slice %v", got, want)
	}
	wantDM, err := DirectMethod(tr, np, sliceModel)
	if err != nil {
		t.Fatalf("DirectMethod: %v", err)
	}
	gotDM, err := DirectMethodView(v, np, viewModel)
	if err != nil {
		t.Fatalf("DirectMethodView: %v", err)
	}
	if gotDM != wantDM {
		t.Fatalf("DM with fit model: view %+v != slice %+v", gotDM, wantDM)
	}
	wantDR, err := DoublyRobust(tr, np, sliceModel, DROptions{Clip: 5})
	if err != nil {
		t.Fatalf("DoublyRobust: %v", err)
	}
	gotDR, err := DoublyRobustView(v, np, viewModel, DROptions{Clip: 5})
	if err != nil {
		t.Fatalf("DoublyRobustView: %v", err)
	}
	if gotDR != wantDR {
		t.Fatalf("DR with fit model: view %+v != slice %+v", gotDR, wantDR)
	}
}

// TestCrossFitDRViewBitIdentical asserts the cross-fitted estimator
// agrees bit-for-bit when folds are carved from the view by index
// instead of from the slice by copy.
func TestCrossFitDRViewBitIdentical(t *testing.T) {
	const n = 3000
	tr, np, _ := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	fit := func(part Trace[float64, int]) (RewardModel[float64, int], error) {
		return FitTable(part, func(c float64, d int) string {
			return strconv.FormatFloat(c, 'g', -1, 64) + "|" + strconv.Itoa(d)
		}), nil
	}
	for _, folds := range []int{2, 3} {
		want, err := CrossFitDR(tr, np, fit, folds, DROptions{Clip: 4})
		if err != nil {
			t.Fatalf("CrossFitDR folds=%d: %v", folds, err)
		}
		for _, w := range workerCounts {
			withParallelism(t, w, 64, func() {
				got, err := CrossFitDRView(v, np, fit, folds, DROptions{Clip: 4})
				if err != nil {
					t.Fatalf("CrossFitDRView folds=%d workers=%d: %v", folds, w, err)
				}
				if got != want {
					t.Fatalf("CrossFitDRView folds=%d workers=%d: %+v != %+v", folds, w, got, want)
				}
			})
		}
	}
}

// TestViewEstimatorErrorsMatchSlice asserts the view path fails with
// the exact error string of the sequential slice scan — including the
// first-failing-record index — for every estimator that validates
// distributions.
func TestViewEstimatorErrorsMatchSlice(t *testing.T) {
	const n = 2000
	tr, _, model := determinismTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	bad := FuncPolicy[float64, int](func(x float64) []Weighted[int] {
		if x > 0.5 {
			return []Weighted[int]{{Decision: 0, Prob: 0.7}, {Decision: 1, Prob: 0.7}}
		}
		return []Weighted[int]{{Decision: 0, Prob: 1}, {Decision: 1, Prob: 0}, {Decision: 2, Prob: 0}}
	})
	type variant struct {
		name  string
		slice func() error
		view  func() error
	}
	variants := []variant{
		{"DM",
			func() error { _, err := DirectMethod(tr, bad, model); return err },
			func() error { _, err := DirectMethodView(v, bad, model); return err }},
		{"DR",
			func() error { _, err := DoublyRobust(tr, bad, model, DROptions{}); return err },
			func() error { _, err := DoublyRobustView(v, bad, model, DROptions{}); return err }},
		{"SwitchDR",
			func() error { _, err := SwitchDR(tr, bad, model, SwitchOptions{}); return err },
			func() error { _, err := SwitchDRView(v, bad, model, SwitchOptions{}); return err }},
	}
	for _, vr := range variants {
		var want string
		withParallelism(t, 1, n+1, func() {
			err := vr.slice()
			if err == nil {
				t.Fatalf("%s slice: expected error", vr.name)
			}
			want = err.Error()
		})
		for _, w := range workerCounts {
			withParallelism(t, w, 64, func() {
				err := vr.view()
				if err == nil {
					t.Fatalf("%s view workers=%d: expected error", vr.name, w)
				}
				if err.Error() != want {
					t.Fatalf("%s view workers=%d: error %q != slice %q", vr.name, w, err.Error(), want)
				}
			})
		}
	}
}

// TestBootstrapViewMatchesBootstrap drives the serial bootstrap from
// the same RNG on both paths: index draws consume the stream exactly
// as record draws do, so the intervals must be bit-identical.
func TestBootstrapViewMatchesBootstrap(t *testing.T) {
	const n = 800
	tr, np, model := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	sliceEst := func(t Trace[float64, int]) (Estimate, error) {
		return DoublyRobust(t, np, model, DROptions{Clip: 5})
	}
	viewEst := func(v *TraceView[float64, int], idx []int) (Estimate, error) {
		return DoublyRobustViewIdx(v, idx, np, model, DROptions{Clip: 5})
	}
	want, err := Bootstrap(tr, sliceEst, mathx.NewRNG(42), 60, 0.9)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	got, err := BootstrapView(v, viewEst, mathx.NewRNG(42), 60, 0.9)
	if err != nil {
		t.Fatalf("BootstrapView: %v", err)
	}
	if got != want {
		t.Fatalf("BootstrapView %+v != Bootstrap %+v", got, want)
	}
}

// TestBootstrapViewSeededBitIdentical asserts the seeded, sharded
// bootstrap produces identical intervals and skip counts from the view
// as from the slice, at every worker count (resample i is pinned to
// shard i on both paths).
func TestBootstrapViewSeededBitIdentical(t *testing.T) {
	const (
		n     = 1200
		seed  = 99
		b     = 150
		level = 0.95
	)
	tr, np, model := quantizedTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	sliceEst := func(t Trace[float64, int]) (Estimate, error) {
		return DoublyRobust(t, np, model, DROptions{Clip: 5})
	}
	viewEst := func(v *TraceView[float64, int], idx []int) (Estimate, error) {
		return DoublyRobustViewIdx(v, idx, np, model, DROptions{Clip: 5})
	}
	var wantIv Interval
	var wantStats BootstrapStats
	withParallelism(t, 1, n+1, func() {
		var err error
		wantIv, wantStats, err = BootstrapSeededStats(tr, sliceEst, seed, b, level)
		if err != nil {
			t.Fatalf("BootstrapSeededStats: %v", err)
		}
	})
	for _, w := range workerCounts {
		withParallelism(t, w, 64, func() {
			gotIv, gotStats, err := BootstrapViewSeededStats(v, viewEst, seed, b, level)
			if err != nil {
				t.Fatalf("BootstrapViewSeededStats workers=%d: %v", w, err)
			}
			if gotIv != wantIv || gotStats != wantStats {
				t.Fatalf("workers=%d: view (%+v, %+v) != slice (%+v, %+v)", w, gotIv, gotStats, wantIv, wantStats)
			}
		})
	}
}

// TestBootstrapDRViewSeededMatchesRefitClosure pins the packaged
// refit-DR bootstrap (running sufficient statistics over index draws)
// to the naive slice closure drevald serves: FitTable + DoublyRobust
// per resample. Same seeds, bit-identical interval and stats, at every
// worker count.
func TestBootstrapDRViewSeededMatchesRefitClosure(t *testing.T) {
	const (
		n     = 1000
		seed  = 7
		b     = 120
		level = 0.9
	)
	for _, opts := range []DROptions{{}, {Clip: 5}, {Clip: 5, SelfNormalize: true}} {
		opts := opts
		tr, np, _ := quantizedTrace(n)
		v, err := NewTraceView(tr)
		if err != nil {
			t.Fatalf("NewTraceView: %v", err)
		}
		key := func(c float64, d int) string {
			return strconv.FormatFloat(c, 'g', -1, 64) + "|" + strconv.Itoa(d)
		}
		sliceEst := func(t Trace[float64, int]) (Estimate, error) {
			m := FitTable(t, key)
			return DoublyRobust(t, np, m, opts)
		}
		var wantIv Interval
		var wantStats BootstrapStats
		withParallelism(t, 1, n+1, func() {
			var err error
			wantIv, wantStats, err = BootstrapSeededStats(tr, sliceEst, seed, b, level)
			if err != nil {
				t.Fatalf("opts=%+v BootstrapSeededStats: %v", opts, err)
			}
		})
		for _, w := range workerCounts {
			withParallelism(t, w, 64, func() {
				gotIv, gotStats, err := BootstrapDRViewSeededStats(v, np, opts, seed, b, level)
				if err != nil {
					t.Fatalf("opts=%+v workers=%d: %v", opts, w, err)
				}
				if gotIv != wantIv || gotStats != wantStats {
					t.Fatalf("opts=%+v workers=%d: view (%+v, %+v) != slice (%+v, %+v)",
						opts, w, gotIv, gotStats, wantIv, wantStats)
				}
			})
		}
	}
}

// TestBootstrapViewAllFailMatchesSlice asserts the all-resamples-failed
// error carries the same wrapped message on both paths.
func TestBootstrapViewAllFailMatchesSlice(t *testing.T) {
	const n = 300
	tr, _, _ := determinismTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	failSlice := func(Trace[float64, int]) (Estimate, error) {
		return Estimate{}, fmt.Errorf("synthetic failure")
	}
	failView := func(*TraceView[float64, int], []int) (Estimate, error) {
		return Estimate{}, fmt.Errorf("synthetic failure")
	}
	_, _, errSlice := BootstrapSeededStats(tr, failSlice, 5, 20, 0.9)
	_, _, errView := BootstrapViewSeededStats(v, failView, 5, 20, 0.9)
	if errSlice == nil || errView == nil {
		t.Fatalf("expected both paths to fail: slice=%v view=%v", errSlice, errView)
	}
	if errSlice.Error() != errView.Error() {
		t.Fatalf("error mismatch: slice %q view %q", errSlice.Error(), errView.Error())
	}
}

// vecCtx is a deliberately non-comparable context (slice field) for the
// keyed-view tests.
type vecCtx struct {
	xs []float64
}

func vecKey(c vecCtx) string {
	s := ""
	for _, x := range c.xs {
		s += strconv.FormatFloat(x, 'g', -1, 64) + ","
	}
	return s
}

// TestKeyedViewBitIdenticalToSlice covers NewTraceViewKeyed: a
// non-comparable context type interned by key must still reproduce the
// slice estimates bit-for-bit.
func TestKeyedViewBitIdenticalToSlice(t *testing.T) {
	const n = 2500
	rng := mathx.NewRNG(4321)
	old := EpsilonGreedyPolicy[vecCtx, int]{
		Base:      func(vecCtx) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	ctxs := make([]vecCtx, n)
	for i := range ctxs {
		// Snap to a grid so keys collide and interning shares contexts.
		ctxs[i] = vecCtx{xs: []float64{float64(rng.Intn(8)) / 8, float64(rng.Intn(4)) / 4}}
	}
	reward := func(c vecCtx, d int) float64 { return c.xs[0]*float64(d+1) + c.xs[1] }
	tr := CollectTrace(ctxs, old, func(c vecCtx, d int) float64 {
		return reward(c, d) + rng.Normal(0, 0.2)
	}, rng)
	np := EpsilonGreedyPolicy[vecCtx, int]{
		Base:      func(vecCtx) int { return 2 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.1,
	}
	model := RewardFunc[vecCtx, int](func(c vecCtx, d int) float64 { return reward(c, d) + 0.1 })
	v, err := NewTraceViewKeyed(tr, vecKey)
	if err != nil {
		t.Fatalf("NewTraceViewKeyed: %v", err)
	}
	if v.NumContexts() >= n/2 {
		t.Fatalf("keyed interning did not share contexts: %d unique of %d", v.NumContexts(), n)
	}
	type variant struct {
		name  string
		slice func() (Estimate, error)
		view  func() (Estimate, error)
	}
	variants := []variant{
		{"DM",
			func() (Estimate, error) { return DirectMethod(tr, np, model) },
			func() (Estimate, error) { return DirectMethodView(v, np, model) }},
		{"SNIPS",
			func() (Estimate, error) { return IPS(tr, np, IPSOptions{SelfNormalize: true}) },
			func() (Estimate, error) { return IPSView(v, np, IPSOptions{SelfNormalize: true}) }},
		{"DR",
			func() (Estimate, error) { return DoublyRobust(tr, np, model, DROptions{Clip: 4}) },
			func() (Estimate, error) { return DoublyRobustView(v, np, model, DROptions{Clip: 4}) }},
	}
	for _, vr := range variants {
		want, err := vr.slice()
		if err != nil {
			t.Fatalf("%s slice: %v", vr.name, err)
		}
		for _, w := range workerCounts {
			withParallelism(t, w, 64, func() {
				got, err := vr.view()
				if err != nil {
					t.Fatalf("%s view workers=%d: %v", vr.name, w, err)
				}
				if got != want {
					t.Fatalf("%s view workers=%d: %+v != slice %+v", vr.name, w, got, want)
				}
			})
		}
	}
	// FitTableView with the keyed view matches FitTable with a key
	// that composes the context key with the decision.
	sliceModel := FitTable(tr, func(c vecCtx, d int) string { return vecKey(c) + "|" + strconv.Itoa(d) })
	viewModel := FitTableView(v)
	for i, rec := range tr {
		if got, want := viewModel.Predict(rec.Context, rec.Decision), sliceModel.Predict(rec.Context, rec.Decision); got != want {
			t.Fatalf("record %d: keyed view predict %v != slice %v", i, got, want)
		}
	}
}

// TestViewCtxVariantsHonorCancellation asserts the Ctx entry points
// observe an already-cancelled context instead of computing.
func TestViewCtxVariantsHonorCancellation(t *testing.T) {
	const n = 1000
	tr, np, model := determinismTrace(n)
	v, err := NewTraceView(tr)
	if err != nil {
		t.Fatalf("NewTraceView: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewTraceViewCtx(ctx, tr); err == nil {
		t.Fatal("NewTraceViewCtx: expected cancellation error")
	}
	if _, err := DirectMethodViewCtx(ctx, v, np, model); err == nil {
		t.Fatal("DirectMethodViewCtx: expected cancellation error")
	}
	if _, err := IPSViewCtx(ctx, v, np, IPSOptions{}); err == nil {
		t.Fatal("IPSViewCtx: expected cancellation error")
	}
	if _, err := DoublyRobustViewCtx(ctx, v, np, model, DROptions{}); err == nil {
		t.Fatal("DoublyRobustViewCtx: expected cancellation error")
	}
	if _, err := SwitchDRViewCtx(ctx, v, np, model, SwitchOptions{}); err == nil {
		t.Fatal("SwitchDRViewCtx: expected cancellation error")
	}
	if _, err := DiagnoseViewCtx(ctx, v, np); err == nil {
		t.Fatal("DiagnoseViewCtx: expected cancellation error")
	}
	if _, err := FitTableViewCtx(ctx, v); err == nil {
		t.Fatal("FitTableViewCtx: expected cancellation error")
	}
	if _, err := BootstrapViewCtx(ctx, v, func(v *TraceView[float64, int], idx []int) (Estimate, error) {
		return IPSViewIdx(v, idx, np, IPSOptions{})
	}, mathx.NewRNG(1), 10, 0.9); err == nil {
		t.Fatal("BootstrapViewCtx: expected cancellation error")
	}
	if _, _, err := BootstrapDRViewSeededStatsCtx(ctx, v, np, DROptions{}, 1, 10, 0.9); err == nil {
		t.Fatal("BootstrapDRViewSeededStatsCtx: expected cancellation error")
	}
}
