package core

import (
	"context"

	"drnet/internal/parallel"
)

// ParallelThreshold is the trace length at or above which the
// estimators (DirectMethod, IPS, DoublyRobust) compute their per-record
// contributions on the shared worker pool; shorter traces run the plain
// sequential loop. The two paths are bit-identical — contributions are
// written by record index and summarized in index order either way — so
// the threshold is purely a scheduling knob: below it the pool's
// goroutine overhead outweighs the win. Tests lower it to exercise the
// parallel path on small traces; it is not meant to be mutated while
// estimators are running.
var ParallelThreshold = 4096

// estimatorGrain is the chunk size for per-record estimator loops:
// large enough to amortize chunk dispatch, small enough to load-balance
// uneven policy evaluation costs across workers.
const estimatorGrain = 2048

// forEachRecordCtx runs fn over [0, n) — sequentially below
// ParallelThreshold, chunked on the worker pool at or above it. fn must
// be index-pure (it writes per-record outputs by index); errors surface
// exactly as in a sequential scan (lowest record first). A cancelled
// ctx stops the parallel path at the next chunk boundary and the
// sequential path before it starts; an un-cancelled ctx changes
// nothing.
func forEachRecordCtx(ctx context.Context, n int, fn func(lo, hi int) error) error {
	if n < ParallelThreshold {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(0, n)
	}
	return parallel.ForEachCtx(ctx, n, 0, estimatorGrain, fn)
}

func forEachRecord(n int, fn func(lo, hi int) error) error {
	return forEachRecordCtx(context.Background(), n, fn)
}
