package core

import (
	"errors"
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestReplayMatchesDRStationary(t *testing.T) {
	// For a stationary target policy the replay estimator is identical
	// in expectation to the basic DR (§4.2: "identical to the basic DR
	// under the assumption of stationary policies").
	np := banditNewPolicy(0.3)
	model := RewardFunc[float64, int](func(c float64, d int) float64 { return c * float64(d+1) })
	var replayVals, drVals []float64
	for run := 0; run < 40; run++ {
		b := newTestBandit(int64(500+run), 0.1)
		tr, _ := collectBanditTrace(b, 600, 0.6)
		rng := mathx.NewRNG(int64(9000 + run))
		res, err := ReplayDR[float64, int](tr, Stationary[float64, int]{Policy: np}, model, rng)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := DoublyRobust(tr, np, model, DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		replayVals = append(replayVals, res.Estimate.Value)
		drVals = append(drVals, dr.Value)
		if res.Accepted+res.Skipped != len(tr) {
			t.Fatalf("accounting broken: %d + %d != %d", res.Accepted, res.Skipped, len(tr))
		}
	}
	if d := math.Abs(mathx.Mean(replayVals) - mathx.Mean(drVals)); d > 0.05 {
		t.Fatalf("replay mean %g vs DR mean %g differ by %g", mathx.Mean(replayVals), mathx.Mean(drVals), d)
	}
}

// windowPolicy is a history-dependent test policy: it prefers the
// decision whose accepted-history rewards have been highest so far.
type windowPolicy struct{}

func (windowPolicy) DistributionWithHistory(h Trace[float64, int], _ float64) []Weighted[int] {
	sums := map[int]float64{0: 0.1, 1: 0.1, 2: 0.1}
	for _, rec := range h {
		sums[rec.Decision] += rec.Reward
	}
	total := 0.0
	for _, v := range sums {
		total += v
	}
	out := make([]Weighted[int], 0, 3)
	for d := 0; d < 3; d++ {
		out = append(out, Weighted[int]{Decision: d, Prob: sums[d] / total})
	}
	return out
}

func TestReplayNonStationaryConverges(t *testing.T) {
	// A history-based policy shifts probability mass toward the best
	// decision (d=2) as history accrues; the replay estimate should fall
	// between the uniform value (1.0) and the optimal value (1.5) and
	// accept a nontrivial share of records.
	b := newTestBandit(17, 0.05)
	tr, _ := collectBanditTrace(b, 3000, 1.0) // uniform logging
	rng := mathx.NewRNG(99)
	model := RewardFunc[float64, int](func(c float64, d int) float64 { return c * float64(d+1) })
	res, err := ReplayDR[float64, int](tr, windowPolicy{}, model, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < 100 {
		t.Fatalf("accepted only %d records", res.Accepted)
	}
	if res.Estimate.Value < 0.95 || res.Estimate.Value > 1.6 {
		t.Fatalf("estimate %g outside plausible (0.95, 1.6)", res.Estimate.Value)
	}
}

func TestReplayErrors(t *testing.T) {
	rng := mathx.NewRNG(1)
	model := ConstantModel[float64, int]{}
	if _, err := ReplayDR[float64, int](nil, windowPolicy{}, model, rng); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("expected ErrEmptyTrace")
	}
	tr := Trace[float64, int]{{Context: 0.5, Decision: 7, Reward: 1, Propensity: 0.5}}
	// New policy never chooses decision 7 → no matches.
	never := Stationary[float64, int]{Policy: UniformPolicy[float64, int]{Decisions: []int{0, 1}}}
	if _, err := ReplayDR[float64, int](tr, never, model, rng); !errors.Is(err, ErrNoMatches) {
		t.Fatal("expected ErrNoMatches")
	}
	bad := Trace[float64, int]{{Context: 0.5, Decision: 0, Reward: 1, Propensity: -1}}
	if _, err := ReplayDR[float64, int](bad, never, model, rng); err == nil {
		t.Fatal("expected propensity validation error")
	}
}

func TestHistoryFuncPolicy(t *testing.T) {
	f := HistoryFuncPolicy[float64, int](func(h Trace[float64, int], c float64) []Weighted[int] {
		return []Weighted[int]{{Decision: len(h), Prob: 1}}
	})
	dist := f.DistributionWithHistory(make(Trace[float64, int], 3), 0)
	if dist[0].Decision != 3 {
		t.Fatal("history not passed through")
	}
}
