package core

import (
	"context"
	"fmt"
)

// AttachPropensities fills each record's Propensity from a known old
// policy. It returns an error if the old policy assigns zero probability
// to a logged decision, which would make the trace inconsistent with the
// claimed logging policy.
func AttachPropensities[C any, D comparable](t Trace[C, D], oldPolicy Policy[C, D]) error {
	return AttachPropensitiesCtx(context.Background(), t, oldPolicy)
}

// AttachPropensitiesCtx is AttachPropensities with cooperative
// cancellation: ctx is checked once per chunk of records, so a
// cancelled ctx stops the fill within one chunk boundary (already
// filled records keep their propensities) and returns ctx's error.
func AttachPropensitiesCtx[C any, D comparable](ctx context.Context, t Trace[C, D], oldPolicy Policy[C, D]) error {
	for i := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		p := Prob(oldPolicy, t[i].Context, t[i].Decision)
		if p <= 0 {
			return fmt.Errorf("core: record %d: old policy assigns probability 0 to logged decision %v", i, t[i].Decision)
		}
		t[i].Propensity = p
	}
	return nil
}

// EstimatePropensities estimates µ_old(d|c) from the trace itself by
// empirical frequencies within groups of contexts that share key(c).
// This covers the practical case the paper notes ("in practice, it may
// be necessary to estimate this probability from the trace").
//
// minCount guards against degenerate groups: groups with fewer records
// fall back to the marginal decision frequencies. Estimated propensities
// are floored at floor to keep importance weights finite.
func EstimatePropensities[C any, D comparable](t Trace[C, D], key func(c C) string, minCount int, floor float64) error {
	return EstimatePropensitiesCtx(context.Background(), t, key, minCount, floor)
}

// EstimatePropensitiesCtx is EstimatePropensities with cooperative
// cancellation: ctx is checked once per chunk of records in both the
// counting and the fill pass, so a cancelled ctx stops within one chunk
// boundary and returns ctx's error (the trace may then be partially
// filled).
func EstimatePropensitiesCtx[C any, D comparable](ctx context.Context, t Trace[C, D], key func(c C) string, minCount int, floor float64) error {
	if floor <= 0 {
		floor = 1e-4
	}
	if minCount < 1 {
		minCount = 1
	}
	type group struct {
		total  int
		counts map[D]int
	}
	groups := make(map[string]*group)
	marginal := &group{counts: make(map[D]int)}
	for i, rec := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		k := key(rec.Context)
		g, ok := groups[k]
		if !ok {
			g = &group{counts: make(map[D]int)}
			groups[k] = g
		}
		g.counts[rec.Decision]++
		g.total++
		marginal.counts[rec.Decision]++
		marginal.total++
	}
	if marginal.total == 0 {
		return ErrEmptyTrace
	}
	for i := range t {
		if i%estimatorGrain == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		g := groups[key(t[i].Context)]
		if g.total < minCount {
			g = marginal
		}
		p := float64(g.counts[t[i].Decision]) / float64(g.total)
		if p < floor {
			p = floor
		}
		if p > 1 {
			p = 1
		}
		t[i].Propensity = p
	}
	return nil
}
