package walog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// manifestName is the sealed-segment index file. It is rewritten with
// the classic tmp+rename dance so readers never observe a partial
// manifest: either the old complete file or the new complete file.
//
// The manifest is advisory: recovery always scans the segment files
// themselves (the manifest cannot be newer than the data it describes,
// and trusting it would make manifest corruption fatal). Open
// cross-checks it and reports disagreement via Recovery.ManifestOK.
const manifestName = "MANIFEST.json"

// manifest is the on-disk shape of the sealed-segment index.
type manifest struct {
	// Version guards future layout changes.
	Version int `json:"version"`
	// Sealed lists rotated segments in order; the active tail segment
	// is deliberately absent (its length changes every append).
	Sealed []SegmentInfo `json:"sealed"`
}

// writeManifest atomically replaces the manifest with the given sealed
// set. The caller is responsible for fsyncing the directory afterwards
// when the rename itself must be durable.
func writeManifest(dir string, sealed []SegmentInfo) error {
	m := manifest{Version: 1, Sealed: sealed}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("walog: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("walog: writing manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		closeQuiet(f)
		return fmt.Errorf("walog: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		return fmt.Errorf("walog: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("walog: closing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("walog: installing manifest: %w", err)
	}
	return nil
}

// readManifest loads the manifest if present. ok is false when the
// file does not exist; a present-but-unreadable manifest is NOT an
// error for recovery purposes (the scan is the truth) and comes back
// as ok=false too, so Open reports ManifestOK=false via the mismatch
// path only when a parseable manifest disagrees with the scan.
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("walog: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		// A torn manifest (crash between tmp write and rename cannot
		// cause this, but disk corruption can) is ignored; the scan
		// rebuilds it.
		return manifest{}, false, nil
	}
	return m, true, nil
}

// manifestMatches reports whether the manifest agrees with the sealed
// set recovered by scanning.
func manifestMatches(m manifest, sealed []SegmentInfo) bool {
	if len(m.Sealed) != len(sealed) {
		return false
	}
	for i := range sealed {
		if m.Sealed[i] != sealed[i] {
			return false
		}
	}
	return true
}
