// Package walog is a crash-safe append-only segment log: the durable
// substrate under drevald's streaming ingestion. Callers append opaque
// payloads (drevald appends binary-encoded record batches); the log
// writes them as length+CRC32C-framed records into numbered segment
// files, rotates segments at a size threshold, tracks sealed segments
// in an atomically-replaced manifest, and — after a crash — recovers
// by scanning segments and truncating the torn tail of the last one.
//
// Durability contract: when Append returns nil under FsyncAlways, the
// frame is on stable storage and will be recovered by any subsequent
// Open. Under FsyncInterval the frame is durable within one interval;
// under FsyncNever durability is whenever the OS writes back. drevald
// acks ingest batches only after Append returns, so "acked" is exactly
// as strong as the configured policy — the crash-replay chaos suite
// pins the FsyncAlways version of this contract.
//
// Failure semantics: a failed append (injected or real short write,
// fsync error) leaves the log usable — the writer truncates the active
// segment back to the last good frame before returning the error, so
// one torn write cannot poison every subsequent frame. If even that
// self-heal truncation fails the log wedges closed and every later
// Append returns ErrWedged; the caller restarts and recovery applies
// the same truncation offline.
package walog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"drnet/internal/resilience"
)

// Segment file layout:
//
//	offset 0:  8-byte magic "DRWAL001"
//	then frames back to back:
//	  uint32 LE payload length
//	  uint32 LE CRC32C (Castagnoli) of the payload
//	  payload bytes
//
// A frame is valid iff its full header and payload are present and the
// CRC matches. Recovery accepts the longest valid frame prefix of the
// final segment and truncates the rest (the torn tail a crash mid-write
// leaves behind); an invalid frame in a SEALED segment is corruption of
// acked data and fails Open instead.
const (
	// Magic identifies a walog segment file (version 001).
	Magic = "DRWAL001"
	// FrameHeaderSize is the per-frame overhead: length + CRC.
	FrameHeaderSize = 8
)

// crcTable is the Castagnoli polynomial table (CRC32C), the checksum
// used by most modern storage formats and accelerated in hardware.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload (exported for tests and
// external verifiers).
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// FsyncPolicy selects when the log calls fsync on the active segment.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: ack == durable.
	FsyncAlways FsyncPolicy = iota
	// FsyncIntervalPolicy syncs on a background ticker: an ack is
	// durable within one interval; a crash inside the window can lose
	// the tail of acked frames (the response's durable flag says so).
	FsyncIntervalPolicy
	// FsyncNever leaves write-back entirely to the OS.
	FsyncNever
)

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncIntervalPolicy, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("walog: unknown fsync policy %q (want always, interval or never)", s)
}

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncIntervalPolicy:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segment files and the manifest. It
	// is created if absent.
	Dir string
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default 64 MiB). Rotation happens on frame boundaries, so a
	// single frame larger than the threshold still fits in one segment.
	SegmentBytes int64
	// MaxFrameBytes bounds a single payload, on write and on recovery
	// (default 32 MiB). Recovery treats a length field above the bound
	// as a torn/corrupt frame rather than attempting a huge read.
	MaxFrameBytes int
	// Fsync selects the durability point (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under
	// FsyncIntervalPolicy (default 100ms).
	FsyncInterval time.Duration
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return errors.New("walog: Options.Dir is required")
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < int64(len(Magic))+FrameHeaderSize {
		return fmt.Errorf("walog: SegmentBytes %d is below one frame header", o.SegmentBytes)
	}
	if o.MaxFrameBytes == 0 {
		o.MaxFrameBytes = 32 << 20
	}
	if o.MaxFrameBytes < 1 {
		return fmt.Errorf("walog: MaxFrameBytes %d must be >= 1", o.MaxFrameBytes)
	}
	if o.FsyncInterval == 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.FsyncInterval < 0 {
		return fmt.Errorf("walog: FsyncInterval %v must be > 0", o.FsyncInterval)
	}
	return nil
}

// ErrWedged is returned by Append after an unrecoverable write failure
// (the self-heal truncation itself failed): the in-memory writer no
// longer knows the on-disk tail state, so it refuses further appends.
var ErrWedged = errors.New("walog: log wedged after unrecoverable write failure")

// ErrTooLarge is returned by Append for payloads above MaxFrameBytes.
var ErrTooLarge = errors.New("walog: payload exceeds MaxFrameBytes")

// SegmentInfo describes one sealed (rotated, no longer written)
// segment, as recorded in the manifest.
type SegmentInfo struct {
	// Name is the file name within Dir (e.g. "wal-00000001.seg").
	Name string `json:"name"`
	// Frames is the number of valid frames in the segment.
	Frames uint64 `json:"frames"`
	// Bytes is the file size including the magic header.
	Bytes int64 `json:"bytes"`
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Segments is the number of segment files recovered (including the
	// reopened tail).
	Segments int
	// Frames is the total valid frames across all segments.
	Frames uint64
	// Bytes is the total valid bytes across all segments.
	Bytes int64
	// TruncatedBytes is the torn tail dropped from the final segment
	// (zero after a clean shutdown).
	TruncatedBytes int64
	// TailSegment is the segment reopened for appending.
	TailSegment string
	// ManifestOK is false when a manifest existed but disagreed with
	// the on-disk scan (the scan wins; the manifest is rewritten).
	ManifestOK bool
}

// AppendResult describes one durable append.
type AppendResult struct {
	// Seq is the frame's log-wide sequence number (0-based, dense).
	Seq uint64
	// Segment is the file the frame was written to.
	Segment string
	// Synced reports whether the frame was fsynced before returning
	// (true under FsyncAlways; false means durability is deferred).
	Synced bool
}

// Log is an append-only segment log. All methods are safe for
// concurrent use; appends are serialized internally so frame order is
// total and equals recovery order.
type Log struct {
	opts Options

	mu        sync.Mutex
	f         *os.File      // guarded by mu
	segName   string        // guarded by mu
	segIndex  int           // guarded by mu
	segBytes  int64         // guarded by mu
	segFrames uint64        // guarded by mu
	sealed    []SegmentInfo // guarded by mu
	// seq is the next frame sequence number.
	// guarded by mu
	seq uint64
	// bytes is the total valid bytes across all segments.
	// guarded by mu
	bytes  int64
	wedged bool // guarded by mu
	closed bool // guarded by mu
	// dirty marks frames written since last sync.
	// guarded by mu
	dirty bool

	syncStop chan struct{}
	syncDone chan struct{}
	// lastSyncErr surfaces background-interval sync failures to the
	// next Append, so a silently failing disk cannot keep acking.
	// guarded by mu
	lastSyncErr error

	// scratch is the frame assembly buffer, reused across appends.
	// guarded by mu
	scratch []byte
}

var segmentRe = regexp.MustCompile(`^wal-(\d{8})\.seg$`)

func segmentName(index int) string { return fmt.Sprintf("wal-%08d.seg", index) }

// Open recovers the log in opts.Dir (creating it when absent) and
// reopens the final segment for appending. See Recovery for what was
// found. Open truncates a torn tail in the final segment; corruption in
// a sealed segment is an error, because those frames were acked.
func Open(opts Options) (*Log, Recovery, error) {
	if err := opts.fill(); err != nil {
		return nil, Recovery{}, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("walog: %w", err)
	}
	names, err := listSegments(opts.Dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec := Recovery{ManifestOK: true}
	l := &Log{opts: opts}

	for i, name := range names {
		path := filepath.Join(opts.Dir, name)
		last := i == len(names)-1
		sc, err := ScanSegment(path, opts.MaxFrameBytes)
		if err != nil {
			return nil, Recovery{}, err
		}
		if sc.ValidBytes != sc.TotalBytes {
			if !last {
				return nil, Recovery{}, fmt.Errorf("walog: sealed segment %s corrupt at offset %d of %d: %s", name, sc.ValidBytes, sc.TotalBytes, sc.TailReason)
			}
			if err := os.Truncate(path, sc.ValidBytes); err != nil {
				return nil, Recovery{}, fmt.Errorf("walog: truncating torn tail of %s: %w", name, err)
			}
			rec.TruncatedBytes = sc.TotalBytes - sc.ValidBytes
		}
		rec.Frames += sc.Frames
		rec.Bytes += sc.ValidBytes
		if !last {
			l.sealed = append(l.sealed, SegmentInfo{Name: name, Frames: sc.Frames, Bytes: sc.ValidBytes})
		} else {
			l.segName = name
			l.segIndex = indexOf(name)
			l.segBytes = sc.ValidBytes
			l.segFrames = sc.Frames
		}
	}
	rec.Segments = len(names)
	l.seq = rec.Frames
	l.bytes = rec.Bytes

	// Cross-check the manifest against the scan; the scan is the truth
	// (the manifest is a fast-path index and an operator aid), but a
	// disagreement is worth surfacing.
	if m, ok, err := readManifest(opts.Dir); err != nil {
		return nil, Recovery{}, err
	} else if ok && !manifestMatches(m, l.sealed) {
		rec.ManifestOK = false
	}

	if l.segName == "" {
		// Fresh directory: create the first segment.
		l.segIndex = 1
		l.segName = segmentName(1)
		f, err := createSegment(filepath.Join(opts.Dir, l.segName))
		if err != nil {
			return nil, Recovery{}, err
		}
		l.f = f
		l.segBytes = int64(len(Magic))
		l.bytes += int64(len(Magic))
		rec.Segments = 1
	} else {
		f, err := os.OpenFile(filepath.Join(opts.Dir, l.segName), os.O_WRONLY, 0o644)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("walog: reopening %s: %w", l.segName, err)
		}
		if _, err := f.Seek(l.segBytes, 0); err != nil {
			closeQuiet(f)
			return nil, Recovery{}, fmt.Errorf("walog: seeking %s: %w", l.segName, err)
		}
		l.f = f
	}
	rec.TailSegment = l.segName

	if err := writeManifest(opts.Dir, l.sealed); err != nil {
		closeQuiet(l.f)
		return nil, Recovery{}, err
	}
	if err := syncDir(opts.Dir); err != nil {
		closeQuiet(l.f)
		return nil, Recovery{}, err
	}

	if opts.Fsync == FsyncIntervalPolicy {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

func indexOf(name string) int {
	m := segmentRe.FindStringSubmatch(name)
	idx := 0
	if len(m) == 2 {
		fmt.Sscanf(m[1], "%d", &idx)
	}
	return idx
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("walog: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segmentRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("walog: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		closeQuiet(f)
		return nil, fmt.Errorf("walog: writing segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		return nil, fmt.Errorf("walog: syncing segment header: %w", err)
	}
	return f, nil
}

// closeQuiet closes a file whose content no longer matters (error
// paths and read handles); write paths check Close explicitly.
func closeQuiet(f *os.File) {
	//lint:allow fsynchygiene error-path cleanup: the file's content is already reported failed
	_ = f.Close()
}

// syncDir fsyncs the directory so segment create/rename entries are
// themselves durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("walog: opening dir for sync: %w", err)
	}
	err = d.Sync()
	closeQuiet(d)
	if err != nil {
		return fmt.Errorf("walog: syncing dir: %w", err)
	}
	return nil
}

// Append writes one payload as a frame, rotating the segment first if
// needed, and applies the fsync policy before returning. On error the
// active segment is truncated back to its last good frame; the payload
// is NOT durable and must not be acked.
func (l *Log) Append(payload []byte) (AppendResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return AppendResult{}, errors.New("walog: append on closed log")
	}
	if l.wedged {
		return AppendResult{}, ErrWedged
	}
	if len(payload) > l.opts.MaxFrameBytes {
		return AppendResult{}, fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(payload), l.opts.MaxFrameBytes)
	}
	if err := l.lastSyncErrLocked(); err != nil {
		return AppendResult{}, err
	}
	if err := resilience.Inject(resilience.PointWALAppend); err != nil {
		return AppendResult{}, fmt.Errorf("walog: append: %w", err)
	}

	frameLen := int64(FrameHeaderSize + len(payload))
	if l.segFrames > 0 && l.segBytes+frameLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return AppendResult{}, err
		}
	}

	// Assemble the whole frame in one buffer so the common case is a
	// single write syscall — a crash can still tear it (the page cache
	// flushes in arbitrary units), which is exactly what the CRC and
	// torn-tail truncation are for.
	need := int(frameLen)
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	frame := l.scratch[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], Checksum(payload))
	copy(frame[FrameHeaderSize:], payload)

	if err := resilience.Inject(resilience.PointWALWrite); err != nil {
		// Injected short write: half the frame reaches the file, then
		// the append fails — the torn tail recovery must clean up.
		if _, werr := l.f.Write(frame[:need/2]); werr != nil {
			err = fmt.Errorf("%w (and the partial write failed: %v)", err, werr)
		}
		l.failAppendLocked()
		return AppendResult{}, fmt.Errorf("walog: write: %w", err)
	}
	if _, err := l.f.Write(frame); err != nil {
		l.failAppendLocked()
		return AppendResult{}, fmt.Errorf("walog: write: %w", err)
	}
	synced := false
	if l.opts.Fsync == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			// The frame bytes are intact on disk but their durability is
			// unknown; refuse the ack and roll the file back so the
			// in-memory and on-disk tails agree.
			l.failAppendLocked()
			return AppendResult{}, err
		}
		synced = true
	} else {
		l.dirty = true
	}

	res := AppendResult{Seq: l.seq, Segment: l.segName, Synced: synced}
	l.seq++
	l.segFrames++
	l.segBytes += frameLen
	l.bytes += frameLen
	return res, nil
}

// failAppendLocked rolls the active segment back to the last good
// frame after a failed write. If the rollback fails the log wedges.
func (l *Log) failAppendLocked() {
	if err := l.f.Truncate(l.segBytes); err != nil {
		l.wedged = true
		return
	}
	if _, err := l.f.Seek(l.segBytes, 0); err != nil {
		l.wedged = true
	}
}

func (l *Log) syncLocked() error {
	if err := resilience.Inject(resilience.PointWALSync); err != nil {
		return fmt.Errorf("walog: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("walog: sync: %w", err)
	}
	l.dirty = false
	return nil
}

func (l *Log) lastSyncErrLocked() error {
	if l.lastSyncErr != nil {
		err := l.lastSyncErr
		l.lastSyncErr = nil
		return fmt.Errorf("walog: deferred sync failed (previously acked frames may not be durable): %w", err)
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("walog: sync on closed log")
	}
	return l.syncLocked()
}

// syncLoop is the FsyncIntervalPolicy background syncer.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.syncStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty && !l.wedged {
				if err := l.syncLocked(); err != nil {
					l.lastSyncErr = err
				}
			}
			l.mu.Unlock()
		}
	}
}

// rotateLocked seals the active segment (final sync + close), records
// it in the manifest, and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("walog: closing sealed segment: %w", err)
	}
	l.sealed = append(l.sealed, SegmentInfo{Name: l.segName, Frames: l.segFrames, Bytes: l.segBytes})
	next := l.segIndex + 1
	name := segmentName(next)
	f, err := createSegment(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return err
	}
	if err := writeManifest(l.opts.Dir, l.sealed); err != nil {
		closeQuiet(f)
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		closeQuiet(f)
		return err
	}
	l.f = f
	l.segIndex = next
	l.segName = name
	l.segFrames = 0
	l.segBytes = int64(len(Magic))
	l.bytes += int64(len(Magic))
	return nil
}

// Close syncs and closes the active segment and stops the background
// syncer. The log cannot be reused after Close.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.syncStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if !l.wedged {
		if err := l.syncLocked(); err != nil {
			firstErr = err
		}
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("walog: close: %w", err)
	}
	return firstErr
}

// Seq returns the next frame sequence number (== total frames).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns how many segment files the log spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Bytes returns the total valid bytes across all segments (headers
// included).
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// ReadAll streams every frame in sequence order through fn. It reads
// from the files the writer already recovered, so it must run before
// concurrent appends begin (drevald replays before serving ingest).
// fn's error aborts the scan and is returned.
func (l *Log) ReadAll(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := make([]string, 0, len(l.sealed)+1)
	for _, s := range l.sealed {
		segs = append(segs, s.Name)
	}
	segs = append(segs, l.segName)
	max := l.opts.MaxFrameBytes
	dir := l.opts.Dir
	l.mu.Unlock()

	seq := uint64(0)
	for _, name := range segs {
		err := readSegmentFrames(filepath.Join(dir, name), max, func(payload []byte) error {
			err := fn(seq, payload)
			seq++
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}
