package walog

import (
	"errors"
	"fmt"
	"testing"

	"drnet/internal/resilience"
)

// withPlan activates a fault plan for the test body and guarantees
// deactivation (these tests share the process-wide injection slot, so
// they must not run in parallel with each other).
func withPlan(t *testing.T, p *resilience.FaultPlan) {
	t.Helper()
	resilience.Activate(p)
	t.Cleanup(resilience.Deactivate)
}

// TestFaultAppendCleanFailure: an error at PointWALAppend fails before
// any bytes reach the file — the log stays clean and later appends
// succeed.
func TestFaultAppendCleanFailure(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	defer l.Close()

	withPlan(t, resilience.NewFaultPlan(7).
		Add(resilience.PointWALAppend, resilience.FaultSpec{ErrProb: 0.5}))

	var acked [][]byte
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf("p-%02d", i))
		if _, err := l.Append(p); err != nil {
			if !errors.Is(err, resilience.ErrInjected) {
				t.Fatalf("Append %d: unexpected error %v", i, err)
			}
			continue
		}
		acked = append(acked, p)
	}
	if len(acked) == 0 || len(acked) == 40 {
		t.Fatalf("plan fired %d/40 — want a mix", 40-len(acked))
	}
	got := collect(t, l)
	if len(got) != len(acked) {
		t.Fatalf("read %d frames, want %d acked", len(got), len(acked))
	}
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestFaultShortWriteSelfHeal: PointWALWrite tears a frame mid-write;
// the writer must truncate back so the NEXT append lands on a clean
// boundary and every acked frame survives a reopen.
func TestFaultShortWriteSelfHeal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})

	withPlan(t, resilience.NewFaultPlan(11).
		Add(resilience.PointWALWrite, resilience.FaultSpec{ErrProb: 0.3}))

	var acked [][]byte
	torn := 0
	for i := 0; i < 60; i++ {
		p := []byte(fmt.Sprintf("payload-%02d", i))
		if _, err := l.Append(p); err != nil {
			if !errors.Is(err, resilience.ErrInjected) {
				t.Fatalf("Append %d: unexpected error %v", i, err)
			}
			torn++
			continue
		}
		acked = append(acked, p)
	}
	if torn == 0 {
		t.Fatal("plan never tore a write")
	}
	resilience.Deactivate()

	got := collect(t, l)
	if len(got) != len(acked) {
		t.Fatalf("in-process read %d frames, want %d acked", len(got), len(acked))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the self-healed file must contain exactly the acked set.
	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Frames != uint64(len(acked)) {
		t.Fatalf("recovered %d frames, want %d", rec.Frames, len(acked))
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("self-heal left a torn tail for recovery: %+v", rec)
	}
	got = collect(t, l2)
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestFaultSyncFailure: an injected fsync failure must refuse the ack
// (FsyncAlways) and roll the frame back — a record whose durability is
// unknown is treated as not written.
func TestFaultSyncFailure(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})

	withPlan(t, resilience.NewFaultPlan(23).
		Add(resilience.PointWALSync, resilience.FaultSpec{ErrProb: 0.4}))

	var acked [][]byte
	failed := 0
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("s-%02d", i))
		if _, err := l.Append(p); err != nil {
			if !errors.Is(err, resilience.ErrInjected) {
				t.Fatalf("Append %d: unexpected error %v", i, err)
			}
			failed++
			continue
		}
		acked = append(acked, p)
	}
	if failed == 0 {
		t.Fatal("plan never failed a sync")
	}
	resilience.Deactivate()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Frames != uint64(len(acked)) {
		t.Fatalf("recovered %d frames, want %d acked", rec.Frames, len(acked))
	}
	got := collect(t, l2)
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestDeferredSyncErrorSurfaces: under FsyncIntervalPolicy a failing
// background sync must surface on the next Append instead of letting
// the log ack into a black hole forever.
func TestDeferredSyncErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever})
	defer l.Close()
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Simulate what the background loop does when fsync fails.
	l.mu.Lock()
	l.lastSyncErr = errors.New("disk on fire")
	l.mu.Unlock()
	if _, err := l.Append([]byte("b")); err == nil {
		t.Fatal("Append swallowed a deferred sync error")
	}
	// The error is consumed; the log keeps working.
	if _, err := l.Append([]byte("c")); err != nil {
		t.Fatalf("Append after surfaced error: %v", err)
	}
}
