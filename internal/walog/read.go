package walog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ScanResult summarizes one segment file's frame scan.
type ScanResult struct {
	// Frames is the number of valid frames found.
	Frames uint64
	// ValidBytes is the offset just past the last valid frame (it
	// includes the magic header; an empty-but-valid segment reports
	// len(Magic)).
	ValidBytes int64
	// TotalBytes is the file's size on disk.
	TotalBytes int64
	// TailReason explains why the scan stopped before TotalBytes
	// (empty when the whole file is valid frames).
	TailReason string
}

// ScanSegment walks a segment file and returns where the valid frame
// prefix ends. It never returns an error for torn or corrupt FRAMES —
// those end the valid prefix and are described by TailReason — only
// for I/O failures or a missing/invalid magic header (which means the
// file is not a walog segment at all, not a torn one).
func ScanSegment(path string, maxFrameBytes int) (ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanResult{}, fmt.Errorf("walog: %w", err)
	}
	defer closeQuiet(f)
	fi, err := f.Stat()
	if err != nil {
		return ScanResult{}, fmt.Errorf("walog: %w", err)
	}
	res := ScanResult{TotalBytes: fi.Size()}

	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return ScanResult{}, fmt.Errorf("walog: %s: reading magic: %w", path, err)
	}
	if string(magic) != Magic {
		return ScanResult{}, fmt.Errorf("walog: %s: bad magic %q, not a walog segment", path, magic)
	}
	res.ValidBytes = int64(len(Magic))

	err = scanFrames(r, maxFrameBytes, func(payload []byte) error {
		res.Frames++
		res.ValidBytes += int64(FrameHeaderSize + len(payload))
		return nil
	}, &res.TailReason)
	if err != nil {
		return ScanResult{}, fmt.Errorf("walog: %s: %w", path, err)
	}
	return res, nil
}

// scanFrames reads frames from r until EOF or the first invalid frame,
// calling fn with each valid payload (the slice is reused between
// calls). A torn/corrupt frame sets *tailReason and stops the scan
// without error; a non-nil error only reports real I/O failures or an
// aborting fn.
func scanFrames(r io.Reader, maxFrameBytes int, fn func(payload []byte) error, tailReason *string) error {
	var hdr [FrameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil // clean end on a frame boundary
			}
			if err == io.ErrUnexpectedEOF {
				*tailReason = "torn frame header"
				return nil
			}
			return err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(length) > int64(maxFrameBytes) {
			// An absurd length is indistinguishable from garbage; do
			// not attempt the read (it could be gigabytes).
			*tailReason = fmt.Sprintf("frame length %d exceeds limit %d", length, maxFrameBytes)
			return nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				*tailReason = "torn frame payload"
				return nil
			}
			return err
		}
		if got := Checksum(payload); got != want {
			*tailReason = fmt.Sprintf("frame CRC mismatch (stored %08x, computed %08x)", want, got)
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// readSegmentFrames streams the valid frames of one segment through fn
// (payload slice reused between calls). Torn tails are silently
// skipped — recovery already decided where the valid prefix ends.
func readSegmentFrames(path string, maxFrameBytes int, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("walog: %w", err)
	}
	defer closeQuiet(f)
	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("walog: %s: reading magic: %w", path, err)
	}
	if string(magic) != Magic {
		return fmt.Errorf("walog: %s: bad magic %q, not a walog segment", path, magic)
	}
	var tail string
	return scanFrames(r, maxFrameBytes, fn, &tail)
}

// ReadSegment decodes every valid frame of a segment image given as a
// byte slice (magic header included) and returns the payloads plus the
// length of the valid prefix. It is the pure-function core the fuzz
// harness drives: any input must decode without panicking, and the
// returned prefix must be a fixed point (re-scanning the prefix yields
// the same frames).
func ReadSegment(data []byte, maxFrameBytes int) (payloads [][]byte, validBytes int64, err error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("walog: bad magic, not a walog segment")
	}
	validBytes = int64(len(Magic))
	var tail string
	err = scanFrames(newByteReader(data[len(Magic):]), maxFrameBytes, func(payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		payloads = append(payloads, cp)
		validBytes += int64(FrameHeaderSize + len(payload))
		return nil
	}, &tail)
	if err != nil {
		return nil, 0, err
	}
	return payloads, validBytes, nil
}

// newByteReader wraps a slice as an io.Reader without bytes.Reader's
// extra state (keeps ReadSegment allocation-light under fuzzing).
func newByteReader(b []byte) io.Reader { return &byteReader{b: b} }

type byteReader struct{ b []byte }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
