package walog

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frame builds one well-formed frame for seeding.
func frame(payload []byte) []byte {
	out := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], Checksum(payload))
	copy(out[FrameHeaderSize:], payload)
	return out
}

func seg(frames ...[]byte) []byte {
	out := []byte(Magic)
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// FuzzReadSegment drives the segment decoder with arbitrary bytes.
// Invariants under ANY input:
//   - never panics
//   - the reported valid prefix is a fixed point: re-decoding it yields
//     the same payloads and consumes all of it
//   - every returned payload round-trips its own CRC framing
//   - inputs with a valid magic never error (torn/corrupt frames just
//     end the prefix)
func FuzzReadSegment(f *testing.F) {
	const maxFrame = 1 << 16

	// Seed corpus: the interesting shapes by construction.
	f.Add([]byte(Magic))                            // empty segment
	f.Add(seg(frame([]byte("hello"))))              // one clean frame
	f.Add(seg(frame(nil), frame([]byte("second")))) // empty payload then data

	torn := seg(frame([]byte("keep")))
	f.Add(append(torn, 0x10, 0x00)) // torn header after a good frame

	partial := seg(frame([]byte("keep")))
	partial = append(partial, frame([]byte("this-payload-gets-cut"))[:FrameHeaderSize+5]...)
	f.Add(partial) // torn payload

	badCRC := frame([]byte("tampered"))
	badCRC[4] ^= 0xFF
	f.Add(seg(frame([]byte("keep")), badCRC)) // corrupt CRC ends prefix

	overLen := make([]byte, FrameHeaderSize)
	binary.LittleEndian.PutUint32(overLen[0:4], 0xFFFFFFF0)
	f.Add(seg(frame([]byte("keep")), overLen)) // absurd length field

	f.Add([]byte("DRWAL002")) // wrong magic version
	f.Add([]byte("DRW"))      // shorter than magic

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, err := ReadSegment(data, maxFrame)
		if err != nil {
			// Only a bad/short magic may error; with a valid magic the
			// decoder must degrade to a shorter prefix instead.
			if len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic {
				t.Fatalf("valid-magic input errored: %v", err)
			}
			return
		}
		if valid < int64(len(Magic)) || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [%d, %d]", valid, len(Magic), len(data))
		}
		// Longest-valid-prefix property: every payload's frame must be
		// inside the prefix, and re-decoding the prefix is a fixed
		// point.
		again, validAgain, err := ReadSegment(data[:valid], maxFrame)
		if err != nil {
			t.Fatalf("re-decoding the valid prefix errored: %v", err)
		}
		if validAgain != valid {
			t.Fatalf("prefix not a fixed point: %d then %d", valid, validAgain)
		}
		if len(again) != len(payloads) {
			t.Fatalf("prefix re-decode found %d frames, want %d", len(again), len(payloads))
		}
		total := int64(len(Magic))
		for i, p := range payloads {
			if !bytes.Equal(p, again[i]) {
				t.Fatalf("frame %d differs on re-decode", i)
			}
			total += int64(FrameHeaderSize + len(p))
		}
		if total != valid {
			t.Fatalf("frame sizes sum to %d, valid prefix is %d", total, valid)
		}
		// And the prefix really is maximal: if any bytes remain, they
		// must NOT start a valid frame.
		rest := data[valid:]
		if len(rest) >= FrameHeaderSize {
			length := binary.LittleEndian.Uint32(rest[0:4])
			want := binary.LittleEndian.Uint32(rest[4:8])
			if int(length) <= maxFrame && len(rest) >= FrameHeaderSize+int(length) {
				if Checksum(rest[FrameHeaderSize:FrameHeaderSize+int(length)]) == want {
					t.Fatalf("prefix %d not maximal: a valid frame follows", valid)
				}
			}
		}
	})
}
