package walog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.ReadAll(func(seq uint64, payload []byte) error {
		if seq != uint64(len(out)) {
			t.Fatalf("seq %d, want %d", seq, len(out))
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return out
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, Options{Dir: dir})
	if rec.Frames != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh recovery = %+v", rec)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("payload-%03d", i))
		res, err := l.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if res.Seq != uint64(i) {
			t.Fatalf("seq %d, want %d", res.Seq, i)
		}
		if !res.Synced {
			t.Fatalf("FsyncAlways append %d not synced", i)
		}
		want = append(want, p)
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("read %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEmptyPayloadAndZeroLengthFrames(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	if _, err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	got := collect(t, l)
	if len(got) != 2 || len(got[0]) != 0 || string(got[1]) != "x" {
		t.Fatalf("got %q", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRotationAndManifest(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: each payload forces a rotation after the first.
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(make([]byte, 40)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if s := l.Segments(); s < 5 {
		t.Fatalf("Segments() = %d, want several after rotation", s)
	}
	if got := collect(t, l); len(got) != 10 {
		t.Fatalf("read %d frames, want 10", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("readManifest: ok=%v err=%v", ok, err)
	}
	if len(m.Sealed) != 9 { // 10 segments, last one active
		t.Fatalf("manifest sealed = %d, want 9", len(m.Sealed))
	}

	// Reopen: everything recovers, manifest agrees.
	l2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rec.Frames != 10 || !rec.ManifestOK || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if got := collect(t, l2); len(got) != 10 {
		t.Fatalf("post-recovery read %d frames, want 10", len(got))
	}
	if l2.Seq() != 10 {
		t.Fatalf("Seq() = %d, want 10", l2.Seq())
	}
}

func TestOversizedFrameStaysInOneSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64, MaxFrameBytes: 1 << 20})
	big := make([]byte, 500) // larger than SegmentBytes on its own
	if _, err := l.Append(big); err != nil {
		t.Fatalf("Append(big): %v", err)
	}
	if _, err := l.Append([]byte("after")); err != nil {
		t.Fatalf("Append(after): %v", err)
	}
	got := collect(t, l)
	if len(got) != 2 || len(got[0]) != 500 || string(got[1]) != "after" {
		t.Fatalf("got %d frames", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestMaxFrameBytes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, MaxFrameBytes: 16})
	defer l.Close()
	if _, err := l.Append(make([]byte, 17)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Append oversize = %v, want ErrTooLarge", err)
	}
	if _, err := l.Append(make([]byte, 16)); err != nil {
		t.Fatalf("Append at limit: %v", err)
	}
}

// TestTornTailTruncation simulates a crash mid-frame: garbage appended
// past the last fsynced frame must be truncated on recovery with the
// valid prefix intact.
func TestTornTailTruncation(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial header", func(t *testing.T, path string) {
			appendRaw(t, path, []byte{0x10, 0x00})
		}},
		{"partial payload", func(t *testing.T, path string) {
			var hdr [FrameHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 100)
			binary.LittleEndian.PutUint32(hdr[4:8], 0xDEADBEEF)
			appendRaw(t, path, append(hdr[:], []byte("only-a-little")...))
		}},
		{"corrupt crc", func(t *testing.T, path string) {
			payload := []byte("torn")
			var hdr [FrameHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload)^1)
			appendRaw(t, path, append(hdr[:], payload...))
		}},
		{"oversize length", func(t *testing.T, path string) {
			var hdr [FrameHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 0xFFFFFFF0)
			binary.LittleEndian.PutUint32(hdr[4:8], 0)
			appendRaw(t, path, hdr[:])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, Options{Dir: dir})
			for i := 0; i < 5; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			seg := filepath.Join(dir, l.segName)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			before, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			tc.tear(t, seg)

			l2, rec := mustOpen(t, Options{Dir: dir})
			defer l2.Close()
			if rec.Frames != 5 {
				t.Fatalf("recovered %d frames, want 5", rec.Frames)
			}
			if rec.TruncatedBytes == 0 {
				t.Fatalf("expected a truncated tail, recovery = %+v", rec)
			}
			after, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if after.Size() != before.Size() {
				t.Fatalf("segment size %d after recovery, want %d (torn tail removed)", after.Size(), before.Size())
			}
			got := collect(t, l2)
			if len(got) != 5 || string(got[4]) != "good-4" {
				t.Fatalf("post-truncation frames = %d", len(got))
			}
			// The log must keep working where the tear was.
			if _, err := l2.Append([]byte("resumed")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if got := collect(t, l2); len(got) != 6 || string(got[5]) != "resumed" {
				t.Fatalf("resume frames = %d", len(got))
			}
		})
	}
}

func appendRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSealedSegmentCorruptionFailsOpen: acked data in a rotated segment
// going bad is NOT a torn tail — recovery must refuse to silently drop
// it.
func TestSealedSegmentCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 6; i++ {
		if _, err := l.Append(make([]byte, 40)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("want >=3 segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte in the FIRST (sealed) segment.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)+FrameHeaderSize+3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, SegmentBytes: 64}); err == nil {
		t.Fatal("Open succeeded on a corrupt sealed segment")
	}
}

func TestManifestMismatchReported(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 0; i < 6; i++ {
		if _, err := l.Append(make([]byte, 40)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Stale manifest claiming no sealed segments: the scan must win and
	// flag the disagreement.
	if err := writeManifest(dir, nil); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 64})
	defer l2.Close()
	if rec.ManifestOK {
		t.Fatal("ManifestOK = true for a stale manifest")
	}
	if rec.Frames != 6 {
		t.Fatalf("recovered %d frames, want 6", rec.Frames)
	}
	// Open rewrites the manifest from the scan.
	m, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("readManifest after repair: ok=%v err=%v", ok, err)
	}
	if !manifestMatches(m, l2.sealed) {
		t.Fatal("manifest not repaired from scan")
	}
}

func TestGarbageManifestIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Frames != 1 {
		t.Fatalf("recovered %d frames, want 1", rec.Frames)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil {
			t.Fatalf("ParseFsyncPolicy(%q): %v", s, err)
		}
		if p.String() != s {
			t.Fatalf("round-trip %q -> %q", s, p.String())
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted bogus")
	}

	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever})
	res, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if res.Synced {
		t.Fatal("FsyncNever append reported Synced")
	}
	if err := l.Sync(); err != nil { // explicit sync still works
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 1 << 12, Fsync: FsyncNever})
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := collect(t, l); len(got) != goroutines*per {
		t.Fatalf("read %d frames, want %d", len(got), goroutines*per)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Everything survives a reopen even though we never asked for sync
	// (Close syncs).
	l2, rec := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Frames != goroutines*per {
		t.Fatalf("recovered %d frames, want %d", rec.Frames, goroutines*per)
	}
}

func TestScanSegmentEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000001.seg")
	if err := os.WriteFile(path, []byte("JUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanSegment(path, 1<<20); err == nil {
		t.Fatal("ScanSegment accepted a file with bad magic")
	}
	if err := os.WriteFile(path, []byte(Magic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanSegment(path, 1<<20); err == nil {
		t.Fatal("ScanSegment accepted a short-magic file")
	}
}
