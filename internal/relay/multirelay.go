package relay

import (
	"errors"
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// MultiWorld extends the Figure 3 scenario to VIA's real setting: a
// call can go direct or through one of K candidate relays, each with
// its own overhead and per-AS-pair bypass effectiveness. The decision
// space is K+1 wide, which is where matching evaluators starve
// (§2.2.2) and where the relay-selection question — *which* relay, not
// just whether to relay — becomes real.
type MultiWorld struct {
	// World embeds the two-path scenario parameters (congestion, NAT).
	World
	// NumRelays is K.
	NumRelays int
	// relayOverhead[k] is relay k's fixed path stretch cost.
	relayOverhead []float64
	// relayBypass[k][pair] is the congestion fraction remaining when
	// pair routes via relay k (lower = better placed relay).
	relayBypass []map[[2]int]float64
}

// MultiPath is a decision in the multi-relay world: -1 = direct,
// 0..K-1 = relay index.
type MultiPath int

// DirectPath is the direct decision.
const DirectPath MultiPath = -1

// String implements fmt.Stringer.
func (p MultiPath) String() string {
	if p == DirectPath {
		return "direct"
	}
	return fmt.Sprintf("relay%d", int(p))
}

// DefaultMultiWorld returns a 3-relay world.
func DefaultMultiWorld() *MultiWorld {
	return &MultiWorld{World: DefaultWorld(), NumRelays: 3}
}

// Init draws congestion and per-relay placements.
func (w *MultiWorld) Init(rng *mathx.RNG) error {
	if w.NumRelays < 1 {
		return errors.New("relay: need at least one relay")
	}
	if err := w.World.Init(rng); err != nil {
		return err
	}
	w.relayOverhead = make([]float64, w.NumRelays)
	w.relayBypass = make([]map[[2]int]float64, w.NumRelays)
	for k := 0; k < w.NumRelays; k++ {
		w.relayOverhead[k] = 0.1 + 0.2*rng.Float64()
		w.relayBypass[k] = make(map[[2]int]float64)
		for a := 0; a < w.NumAS; a++ {
			for b := 0; b < w.NumAS; b++ {
				if a == b {
					continue
				}
				// Each relay is well-placed for some pairs (bypass ~0.1)
				// and poorly for others (~0.8).
				w.relayBypass[k][[2]int{a, b}] = 0.1 + 0.7*rng.Float64()
			}
		}
	}
	return nil
}

// Paths enumerates the decision space: direct plus each relay.
func (w *MultiWorld) Paths() []MultiPath {
	out := []MultiPath{DirectPath}
	for k := 0; k < w.NumRelays; k++ {
		out = append(out, MultiPath(k))
	}
	return out
}

// TrueQuality returns the expected call quality under a decision.
func (w *MultiWorld) TrueQuality(c Call, p MultiPath) float64 {
	if w.relayBypass == nil {
		panic("relay: multi world not initialized")
	}
	q := 4.5
	if w.Congested(c.SrcAS, c.DstAS) {
		pen := w.CongestionPenalty
		if p != DirectPath {
			pen *= w.relayBypass[int(p)][[2]int{c.SrcAS, c.DstAS}]
		}
		q -= pen
	}
	if p != DirectPath {
		q -= w.relayOverhead[int(p)]
	}
	if c.NAT {
		q -= w.NATPenalty
	}
	return q
}

// OldPolicy mirrors Figure 3's bias in the richer space: NAT-ed calls
// are relayed through relay 0 (the provider's legacy default), public
// calls go direct, with ε exploration across all paths.
func (w *MultiWorld) OldPolicy() core.Policy[Call, MultiPath] {
	return core.EpsilonGreedyPolicy[Call, MultiPath]{
		Base: func(c Call) MultiPath {
			if c.NAT {
				return MultiPath(0)
			}
			return DirectPath
		},
		Decisions: w.Paths(),
		Epsilon:   w.Epsilon,
	}
}

// OraclePolicy picks the best path per call (the target VIA aims for).
func (w *MultiWorld) OraclePolicy() core.Policy[Call, MultiPath] {
	return core.DeterministicPolicy[Call, MultiPath]{Choose: func(c Call) MultiPath {
		best, bestV := DirectPath, w.TrueQuality(c, DirectPath)
		for _, p := range w.Paths()[1:] {
			if v := w.TrueQuality(c, p); v > bestV {
				bestV, best = v, p
			}
		}
		return best
	}}
}

// MultiData is a collected multi-relay scenario instance.
type MultiData struct {
	Trace    core.Trace[Call, MultiPath]
	Contexts []Call
	World    *MultiWorld
}

// Collect logs n calls under the biased old policy.
func (w *MultiWorld) Collect(n int, rng *mathx.RNG) (*MultiData, error) {
	if w.relayBypass == nil {
		return nil, errors.New("relay: multi world not initialized (call Init)")
	}
	if n <= 0 {
		return nil, errors.New("relay: need at least one call")
	}
	calls := w.SampleCalls(n, rng)
	trace := core.CollectTrace(calls, w.OldPolicy(), func(c Call, p MultiPath) float64 {
		return w.TrueQuality(c, p) + rng.Normal(0, w.NoiseStd)
	}, rng)
	return &MultiData{Trace: trace, Contexts: calls, World: w}, nil
}

// GroundTruth returns the exact expected quality of a policy on the
// logged calls.
func (d *MultiData) GroundTruth(p core.Policy[Call, MultiPath]) float64 {
	return core.TrueValue(d.Contexts, p, d.World.TrueQuality)
}

// VIAModel is the NAT-blind per-(AS pair, path) mean model, as in the
// two-path world.
func (d *MultiData) VIAModel() core.RewardModel[Call, MultiPath] {
	return core.FitTable(d.Trace, func(c Call, p MultiPath) string {
		return fmt.Sprintf("%d-%d/%v", c.SrcAS, c.DstAS, p)
	})
}
