// Package relay reproduces the paper's Figure 3 scenario, modeled on
// VIA [14]: VoIP calls between AS pairs can be routed directly or
// through a relay. The logging policy relays (almost) only calls from
// NAT-ed hosts — a selection bias — so the observed relay performance is
// contaminated by the NAT hosts' worse last-mile conditions. A VIA-style
// evaluator that estimates relay performance from same-AS-pair calls
// (ignoring the NAT feature) therefore misjudges relaying for public-IP
// callers; DR with known propensities corrects it.
package relay

import (
	"errors"
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// Path is the routing decision for a call.
type Path int

// The two routing decisions.
const (
	Direct Path = iota
	Relayed
)

// String implements fmt.Stringer.
func (p Path) String() string {
	if p == Direct {
		return "direct"
	}
	return "relayed"
}

// Paths enumerates the decision space.
func Paths() []Path { return []Path{Direct, Relayed} }

// Call is the client-context: an AS pair plus whether the caller is
// behind a NAT.
type Call struct {
	SrcAS, DstAS int
	NAT          bool
}

// World holds the scenario's ground truth.
type World struct {
	// NumAS is the number of ASes; AS pairs index congestion.
	NumAS int
	// CongestedFrac is the fraction of AS pairs with heavy congestion
	// on the direct path.
	CongestedFrac float64
	// CongestionPenalty is the quality lost to congestion on a direct
	// path (relaying bypasses most of it).
	CongestionPenalty float64
	// RelayBypass is the fraction of the congestion penalty that
	// remains when relayed (small: the relay avoids the congested
	// middle mile).
	RelayBypass float64
	// RelayOverhead is the fixed quality cost of the longer relay path.
	RelayOverhead float64
	// NATPenalty is the quality lost by NAT-ed hosts (worse last-mile,
	// cited from [22]) regardless of routing.
	NATPenalty float64
	// NATFrac is the fraction of calls from NAT-ed hosts.
	NATFrac float64
	// NoiseStd is the per-call quality noise.
	NoiseStd float64
	// Epsilon is the logging policy's exploration probability.
	Epsilon float64

	congested map[[2]int]bool
}

// DefaultWorld returns a Figure 3-scale world.
func DefaultWorld() World {
	return World{
		NumAS:             8,
		CongestedFrac:     0.4,
		CongestionPenalty: 1.5,
		RelayBypass:       0.2,
		RelayOverhead:     0.2,
		NATPenalty:        0.8,
		NATFrac:           0.5,
		NoiseStd:          0.2,
		Epsilon:           0.1,
	}
}

// Init draws which AS pairs are congested.
func (w *World) Init(rng *mathx.RNG) error {
	if w.NumAS < 2 {
		return errors.New("relay: need at least two ASes")
	}
	if w.Epsilon <= 0 || w.Epsilon >= 1 {
		return errors.New("relay: Epsilon must be in (0,1)")
	}
	w.congested = make(map[[2]int]bool)
	for a := 0; a < w.NumAS; a++ {
		for b := 0; b < w.NumAS; b++ {
			if a != b && rng.Float64() < w.CongestedFrac {
				w.congested[[2]int{a, b}] = true
			}
		}
	}
	return nil
}

// Congested reports whether the direct path between the AS pair is
// congested.
func (w *World) Congested(src, dst int) bool {
	if w.congested == nil {
		panic("relay: world not initialized")
	}
	return w.congested[[2]int{src, dst}]
}

// TrueQuality returns the expected call quality (MOS-like, ~[1,5]) for a
// call and routing decision.
func (w *World) TrueQuality(c Call, p Path) float64 {
	q := 4.5
	if w.Congested(c.SrcAS, c.DstAS) {
		pen := w.CongestionPenalty
		if p == Relayed {
			pen *= w.RelayBypass
		}
		q -= pen
	}
	if p == Relayed {
		q -= w.RelayOverhead
	}
	if c.NAT {
		q -= w.NATPenalty
	}
	return q
}

// DrawQuality samples a noisy call quality.
func (w *World) DrawQuality(c Call, p Path, rng *mathx.RNG) float64 {
	return w.TrueQuality(c, p) + rng.Normal(0, w.NoiseStd)
}

// OldPolicy is the biased logging policy of Figure 3: NAT-ed callers are
// relayed, public-IP callers go direct, with ε exploration keeping both
// decisions' propensities positive.
func (w *World) OldPolicy() core.Policy[Call, Path] {
	return core.EpsilonGreedyPolicy[Call, Path]{
		Base: func(c Call) Path {
			if c.NAT {
				return Relayed
			}
			return Direct
		},
		Decisions: Paths(),
		Epsilon:   w.Epsilon,
	}
}

// NewPolicy is the target policy of the Figure 3 question: relay every
// call, NAT-ed or not. Evaluating it offline requires predicting relay
// performance for public-IP callers, which is exactly where the
// logging policy's NAT selection bias misleads a NAT-blind model.
func (w *World) NewPolicy() core.Policy[Call, Path] {
	return core.DeterministicPolicy[Call, Path]{Choose: func(Call) Path {
		return Relayed
	}}
}

// CongestedOnlyPolicy relays only calls whose AS pair is congested; its
// evaluation mixes relay and direct cells, so the two cells' opposite
// NAT contaminations partially cancel — a useful contrast to NewPolicy.
func (w *World) CongestedOnlyPolicy() core.Policy[Call, Path] {
	return core.DeterministicPolicy[Call, Path]{Choose: func(c Call) Path {
		if w.Congested(c.SrcAS, c.DstAS) {
			return Relayed
		}
		return Direct
	}}
}

// SampleCalls draws n calls with uniform AS pairs and the configured NAT
// fraction.
func (w *World) SampleCalls(n int, rng *mathx.RNG) []Call {
	out := make([]Call, n)
	for i := range out {
		src := rng.Intn(w.NumAS)
		dst := rng.Intn(w.NumAS - 1)
		if dst >= src {
			dst++
		}
		out[i] = Call{SrcAS: src, DstAS: dst, NAT: rng.Bernoulli(w.NATFrac)}
	}
	return out
}

// Data is one collected scenario instance.
type Data struct {
	Trace    core.Trace[Call, Path]
	Contexts []Call
	World    *World
}

// Collect logs n calls under the biased old policy.
func (w *World) Collect(n int, rng *mathx.RNG) (*Data, error) {
	if w.congested == nil {
		return nil, errors.New("relay: world not initialized (call Init)")
	}
	if n <= 0 {
		return nil, errors.New("relay: need at least one call")
	}
	calls := w.SampleCalls(n, rng)
	trace := core.CollectTrace(calls, w.OldPolicy(), func(c Call, p Path) float64 {
		return w.DrawQuality(c, p, rng)
	}, rng)
	return &Data{Trace: trace, Contexts: calls, World: w}, nil
}

// GroundTruth returns the exact expected quality of a policy on the
// logged calls.
func (d *Data) GroundTruth(p core.Policy[Call, Path]) float64 {
	return core.TrueValue(d.Contexts, p, d.World.TrueQuality)
}

// VIAModel is the Figure 3 evaluator's reward model: mean observed
// quality per (AS pair, path) group, ignoring the NAT feature. Because
// the old policy relays almost exclusively NAT-ed callers, the relay
// cells are contaminated by the NAT penalty and the direct cells by its
// absence.
func (d *Data) VIAModel() core.RewardModel[Call, Path] {
	return core.FitTable(d.Trace, func(c Call, p Path) string {
		return fmt.Sprintf("%d-%d/%v", c.SrcAS, c.DstAS, p)
	})
}

// FullModel adds the NAT feature to the grouping — the paper's "ideally
// we need to add in the relevant feature", at the cost of thinner cells
// (the curse of dimensionality it discusses).
func (d *Data) FullModel() core.RewardModel[Call, Path] {
	return core.FitTable(d.Trace, func(c Call, p Path) string {
		return fmt.Sprintf("%d-%d/%v/nat=%v", c.SrcAS, c.DstAS, p, c.NAT)
	})
}

// String describes the world.
func (w *World) String() string {
	return fmt.Sprintf("relay world: %d ASes, %.0f%% congested pairs, NAT penalty %.1f",
		w.NumAS, 100*w.CongestedFrac, w.NATPenalty)
}
