package relay

import (
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func newMultiWorld(t *testing.T, seed int64) (*MultiWorld, *mathx.RNG) {
	t.Helper()
	w := DefaultMultiWorld()
	rng := mathx.NewRNG(seed)
	if err := w.Init(rng); err != nil {
		t.Fatal(err)
	}
	return w, rng
}

func TestMultiWorldInitValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	bad := DefaultMultiWorld()
	bad.NumRelays = 0
	if err := bad.Init(rng); err == nil {
		t.Fatal("zero relays should fail")
	}
	bad = DefaultMultiWorld()
	bad.NumAS = 1
	if err := bad.Init(rng); err == nil {
		t.Fatal("embedded world validation should propagate")
	}
}

func TestMultiPathStrings(t *testing.T) {
	if DirectPath.String() != "direct" || MultiPath(2).String() != "relay2" {
		t.Fatal("bad path strings")
	}
}

func TestMultiWorldPathsAndQuality(t *testing.T) {
	w, _ := newMultiWorld(t, 2)
	paths := w.Paths()
	if len(paths) != w.NumRelays+1 || paths[0] != DirectPath {
		t.Fatalf("paths = %v", paths)
	}
	// NAT penalty applies on every path.
	c := Call{SrcAS: 0, DstAS: 1}
	n := c
	n.NAT = true
	for _, p := range paths {
		d := w.TrueQuality(c, p) - w.TrueQuality(n, p)
		if d < w.NATPenalty-1e-9 || d > w.NATPenalty+1e-9 {
			t.Fatalf("NAT penalty %g on path %v", d, p)
		}
	}
	// Relays differ: on a congested pair at least two relays should
	// give different quality (random placements).
	var congested *Call
	for a := 0; a < w.NumAS && congested == nil; a++ {
		for b := 0; b < w.NumAS; b++ {
			if a != b && w.Congested(a, b) {
				congested = &Call{SrcAS: a, DstAS: b}
				break
			}
		}
	}
	if congested == nil {
		t.Skip("no congested pair in this draw")
	}
	q0 := w.TrueQuality(*congested, MultiPath(0))
	differs := false
	for k := 1; k < w.NumRelays; k++ {
		if w.TrueQuality(*congested, MultiPath(k)) != q0 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("relays should be heterogeneous")
	}
}

func TestMultiWorldUninitializedPanics(t *testing.T) {
	w := DefaultMultiWorld()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.TrueQuality(Call{}, DirectPath)
}

func TestMultiWorldCollect(t *testing.T) {
	w, rng := newMultiWorld(t, 3)
	if _, err := w.Collect(0, rng); err == nil {
		t.Fatal("zero calls should fail")
	}
	un := DefaultMultiWorld()
	if _, err := un.Collect(5, rng); err == nil {
		t.Fatal("uninitialized should fail")
	}
	d, err := w.Collect(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.Trace.DecisionCounts()
	// Legacy default: relay0 and direct dominate; other relays appear
	// only via exploration.
	if counts[MultiPath(0)] < counts[MultiPath(1)] || counts[DirectPath] < counts[MultiPath(2)] {
		t.Fatalf("unexpected logging mix: %v", counts)
	}
}

func TestMultiRelayDRRanksOracleAboveLegacy(t *testing.T) {
	// Off-policy selection in the richer space: DR must rank the oracle
	// routing above the legacy policy using only logged data, and its
	// estimates should be close to the truths.
	w, rng := newMultiWorld(t, 4)
	d, err := w.Collect(6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := d.VIAModel()
	oracle := w.OraclePolicy()
	legacy := w.OldPolicy()
	truthOracle := d.GroundTruth(oracle)
	truthLegacy := d.GroundTruth(legacy)
	if truthOracle <= truthLegacy {
		t.Fatalf("oracle %g should beat legacy %g in truth", truthOracle, truthLegacy)
	}
	estOracle, err := core.DoublyRobust(d.Trace, oracle, model, core.DROptions{Clip: 50})
	if err != nil {
		t.Fatal(err)
	}
	estLegacy, err := core.DoublyRobust(d.Trace, legacy, model, core.DROptions{Clip: 50})
	if err != nil {
		t.Fatal(err)
	}
	if estOracle.Value <= estLegacy.Value {
		t.Fatalf("DR should rank oracle (%g) above legacy (%g)", estOracle.Value, estLegacy.Value)
	}
	if e := mathx.RelativeError(truthOracle, estOracle.Value); e > 0.1 {
		t.Fatalf("DR error on oracle %g too high", e)
	}
}

func TestMultiRelayMatchingStarves(t *testing.T) {
	// §2.2.2 in the richer space: exact matching against the oracle
	// policy finds few records and has high dispersion across runs
	// compared to DR.
	var matchErrs, drErrs []float64
	for run := 0; run < 10; run++ {
		w, rng := newMultiWorld(t, int64(50+run))
		d, err := w.Collect(1500, rng)
		if err != nil {
			t.Fatal(err)
		}
		oracle := w.OraclePolicy()
		truth := d.GroundTruth(oracle)
		matched, err := core.MatchedRewards(d.Trace, oracle)
		if err != nil {
			matchErrs = append(matchErrs, 1)
		} else {
			matchErrs = append(matchErrs, mathx.RelativeError(truth, matched.Value))
		}
		dr, err := core.DoublyRobust(d.Trace, oracle, d.VIAModel(), core.DROptions{Clip: 50})
		if err != nil {
			t.Fatal(err)
		}
		drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
	}
	if mathx.Mean(drErrs) >= mathx.Mean(matchErrs) {
		t.Fatalf("DR %g should beat matching %g in the multi-relay space",
			mathx.Mean(drErrs), mathx.Mean(matchErrs))
	}
}
