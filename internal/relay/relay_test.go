package relay

import (
	"math"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func newWorld(t *testing.T, seed int64) (*World, *mathx.RNG) {
	t.Helper()
	w := DefaultWorld()
	rng := mathx.NewRNG(seed)
	if err := w.Init(rng); err != nil {
		t.Fatal(err)
	}
	return &w, rng
}

func TestInitValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	bad := DefaultWorld()
	bad.NumAS = 1
	if err := bad.Init(rng); err == nil {
		t.Fatal("one AS should fail")
	}
	bad = DefaultWorld()
	bad.Epsilon = 0
	if err := bad.Init(rng); err == nil {
		t.Fatal("epsilon 0 should fail")
	}
}

func TestTrueQualitySemantics(t *testing.T) {
	w, _ := newWorld(t, 2)
	// Find one congested and one clear pair.
	var congSrc, congDst, clearSrc, clearDst = -1, -1, -1, -1
	for a := 0; a < w.NumAS && (congSrc < 0 || clearSrc < 0); a++ {
		for b := 0; b < w.NumAS; b++ {
			if a == b {
				continue
			}
			if w.Congested(a, b) && congSrc < 0 {
				congSrc, congDst = a, b
			}
			if !w.Congested(a, b) && clearSrc < 0 {
				clearSrc, clearDst = a, b
			}
		}
	}
	if congSrc < 0 || clearSrc < 0 {
		t.Skip("world draw lacks one pair type")
	}
	cong := Call{SrcAS: congSrc, DstAS: congDst}
	clear := Call{SrcAS: clearSrc, DstAS: clearDst}
	// Relaying helps on congested pairs...
	if w.TrueQuality(cong, Relayed) <= w.TrueQuality(cong, Direct) {
		t.Fatal("relaying should help congested pairs")
	}
	// ...and hurts (overhead) on clear pairs.
	if w.TrueQuality(clear, Relayed) >= w.TrueQuality(clear, Direct) {
		t.Fatal("relaying should cost overhead on clear pairs")
	}
	// NAT penalty applies regardless of path.
	nat := cong
	nat.NAT = true
	if d := w.TrueQuality(cong, Relayed) - w.TrueQuality(nat, Relayed); math.Abs(d-w.NATPenalty) > 1e-12 {
		t.Fatalf("NAT penalty on relay path = %g, want %g", d, w.NATPenalty)
	}
}

func TestUninitializedPanics(t *testing.T) {
	w := DefaultWorld()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Congested(0, 1)
}

func TestOldPolicyBias(t *testing.T) {
	w, _ := newWorld(t, 3)
	old := w.OldPolicy()
	natCall := Call{SrcAS: 0, DstAS: 1, NAT: true}
	pubCall := Call{SrcAS: 0, DstAS: 1, NAT: false}
	if p := core.Prob(old, natCall, Relayed); p < 0.9 {
		t.Fatalf("NAT calls should be relayed w.h.p., got %g", p)
	}
	if p := core.Prob(old, pubCall, Direct); p < 0.9 {
		t.Fatalf("public calls should go direct w.h.p., got %g", p)
	}
}

func TestSampleCallsNoSelfPairs(t *testing.T) {
	w, rng := newWorld(t, 4)
	for _, c := range w.SampleCalls(500, rng) {
		if c.SrcAS == c.DstAS {
			t.Fatal("self AS pair sampled")
		}
		if c.SrcAS < 0 || c.SrcAS >= w.NumAS || c.DstAS < 0 || c.DstAS >= w.NumAS {
			t.Fatal("AS out of range")
		}
	}
}

func TestCollect(t *testing.T) {
	w, rng := newWorld(t, 5)
	if _, err := w.Collect(0, rng); err == nil {
		t.Fatal("zero calls should fail")
	}
	un := DefaultWorld()
	if _, err := un.Collect(5, rng); err == nil {
		t.Fatal("uninitialized world should fail")
	}
	d, err := w.Collect(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.String() == "" || Relayed.String() == "" || Direct.String() == "" {
		t.Fatal("empty strings")
	}
}

func TestVIAModelContaminatedByNAT(t *testing.T) {
	// The Figure 3 claim: the NAT-blind model underestimates relay
	// quality for public-IP calls on congested pairs.
	w, rng := newWorld(t, 6)
	d, err := w.Collect(6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	via := d.VIAModel()
	var gaps []float64
	for a := 0; a < w.NumAS; a++ {
		for b := 0; b < w.NumAS; b++ {
			if a == b || !w.Congested(a, b) {
				continue
			}
			pub := Call{SrcAS: a, DstAS: b, NAT: false}
			gaps = append(gaps, w.TrueQuality(pub, Relayed)-via.Predict(pub, Relayed))
		}
	}
	if len(gaps) == 0 {
		t.Skip("no congested pairs in this draw")
	}
	// The model should underestimate by roughly NATFrac-weighted NAT
	// penalty (~0.75 of 0.8 given relays are almost all NAT-ed).
	if m := mathx.Mean(gaps); m < w.NATPenalty/2 {
		t.Fatalf("mean underestimation %g, want > %g", m, w.NATPenalty/2)
	}
	// The NAT-aware model removes most of that bias.
	full := d.FullModel()
	var fullGaps []float64
	for a := 0; a < w.NumAS; a++ {
		for b := 0; b < w.NumAS; b++ {
			if a == b || !w.Congested(a, b) {
				continue
			}
			pub := Call{SrcAS: a, DstAS: b, NAT: false}
			fullGaps = append(fullGaps, math.Abs(w.TrueQuality(pub, Relayed)-full.Predict(pub, Relayed)))
		}
	}
	if mathx.Mean(fullGaps) >= mathx.Mean(gaps) {
		t.Fatalf("NAT-aware model should cut the bias: %g vs %g", mathx.Mean(fullGaps), mathx.Mean(gaps))
	}
}

func TestDRCorrectsNATBias(t *testing.T) {
	// E7: DM with the NAT-blind VIA model is biased; DR with the same
	// model and known propensities removes most of the error.
	var dmErrs, drErrs []float64
	for run := 0; run < 15; run++ {
		w, rng := newWorld(t, int64(100+run))
		d, err := w.Collect(4000, rng)
		if err != nil {
			t.Fatal(err)
		}
		np := w.NewPolicy()
		truth := d.GroundTruth(np)
		via := d.VIAModel()
		dm, err := core.DirectMethod(d.Trace, np, via)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := core.DoublyRobust(d.Trace, np, via, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		dmErrs = append(dmErrs, mathx.RelativeError(truth, dm.Value))
		drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
	}
	dmMean, drMean := mathx.Mean(dmErrs), mathx.Mean(drErrs)
	t.Logf("VIA (DM) error %.4f, DR error %.4f", dmMean, drMean)
	if drMean >= dmMean {
		t.Fatalf("DR error %g should beat VIA error %g", drMean, dmMean)
	}
}
