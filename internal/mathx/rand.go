package mathx

import (
	"fmt"
	"math"
	"math/rand"
	randv2 "math/rand/v2"
)

// RNG wraps *rand.Rand with the distribution samplers the simulators
// need. Every stochastic component in this repository takes an explicit
// RNG so that experiments are reproducible bit-for-bit from a seed.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a seeded RNG.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

// pcgSource adapts math/rand/v2's PCG generator to the math/rand
// Source64 interface so the samplers on RNG work unchanged on top of
// it. PCG's 128-bit state makes it cheap to derive many independent
// streams from (seed, stream) pairs — the basis of the parallel
// engine's sharded RNG.
type pcgSource struct {
	*randv2.PCG
}

func (s pcgSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed is required by the math/rand Source interface; a PCG stream is
// seeded once at construction and never reseeded.
func (s pcgSource) Seed(int64) {
	panic("mathx: reseeding a PCG-backed RNG is not supported; construct a new one")
}

// NewPCG returns an RNG backed by an independent PCG stream determined
// entirely by (seed, stream). Distinct stream values yield statistically
// independent sequences, so parallel shards can each own one without
// coordinating.
func NewPCG(seed, stream uint64) *RNG {
	return &RNG{Rand: rand.New(pcgSource{randv2.NewPCG(seed, stream)})}
}

// Normal samples N(mu, sigma²).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// LogNormal samples a log-normal variate whose underlying normal has the
// given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential samples an exponential variate with the given rate λ.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exponential needs rate > 0")
	}
	return r.ExpFloat64() / rate
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Categorical samples an index proportional to the given non-negative
// weights. It panics when all weights are zero or any is negative.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("mathx: negative or NaN weight %g at index %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		panic("mathx: Categorical needs positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Gamma samples a Gamma(shape, 1) variate using the Marsaglia–Tsang
// method. shape must be positive.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("mathx: Gamma needs shape > 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from Dirichlet(alpha).
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	total := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a)
		total += out[i]
	}
	if total == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Pareto samples a Pareto variate with the given scale (minimum) and
// shape (tail index).
func (r *RNG) Pareto(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		panic("mathx: Pareto needs positive scale and shape")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/shape)
}

// Uniform samples uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bootstrap fills dst with a resample (with replacement) of xs. dst and
// xs may be the same length; dst is returned for chaining.
func (r *RNG) Bootstrap(dst, xs []float64) []float64 {
	for i := range dst {
		dst[i] = xs[r.Intn(len(xs))]
	}
	return dst
}

// BootstrapCI estimates a two-sided percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95)
// using b resamples.
func (r *RNG) BootstrapCI(xs []float64, level float64, b int) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if level <= 0 || level >= 1 {
		panic("mathx: confidence level must be in (0,1)")
	}
	if b <= 0 {
		b = 1000
	}
	means := make([]float64, b)
	buf := make([]float64, len(xs))
	for i := 0; i < b; i++ {
		means[i] = Mean(r.Bootstrap(buf, xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
