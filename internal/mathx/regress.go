package mathx

import (
	"errors"
	"fmt"
	"math"
)

// LinearModel is a fitted linear (or ridge) regression model.
type LinearModel struct {
	// Weights holds one coefficient per input feature.
	Weights []float64
	// Intercept is the bias term.
	Intercept float64
}

// RidgeOptions configures Ridge.
type RidgeOptions struct {
	// Lambda is the L2 regularization strength. Zero gives ordinary
	// least squares. The intercept is never regularized.
	Lambda float64
	// FitIntercept controls whether a bias term is estimated.
	FitIntercept bool
}

// Ridge fits a linear model minimising ||y - Xw - b||² + λ||w||² using the
// normal equations solved by Cholesky factorization. X is given as one row
// per observation.
func Ridge(x [][]float64, y []float64, opts RidgeOptions) (*LinearModel, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("mathx: no observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("mathx: %d rows but %d targets", n, len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, errors.New("mathx: zero-dimensional features")
	}
	if opts.Lambda < 0 {
		return nil, errors.New("mathx: negative lambda")
	}

	// Augment with a constant column when fitting an intercept.
	p := d
	if opts.FitIntercept {
		p++
	}
	// Build XᵀX and Xᵀy directly without materializing the design matrix.
	xtx := NewMatrix(p, p)
	xty := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		if len(x[i]) != d {
			return nil, fmt.Errorf("mathx: row %d has %d features, want %d", i, len(x[i]), d)
		}
		copy(row, x[i])
		if opts.FitIntercept {
			row[d] = 1
		}
		for a := 0; a < p; a++ {
			if row[a] == 0 {
				continue
			}
			xty[a] += row[a] * y[i]
			for b := a; b < p; b++ {
				xtx.Set(a, b, xtx.At(a, b)+row[a]*row[b])
			}
		}
	}
	// Mirror the upper triangle and add the ridge penalty (not on the
	// intercept column).
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx.Set(a, b, xtx.At(b, a))
		}
	}
	for a := 0; a < d; a++ {
		xtx.Set(a, a, xtx.At(a, a)+opts.Lambda)
	}
	// A tiny jitter keeps plain OLS solvable on nearly collinear inputs.
	if opts.Lambda == 0 {
		for a := 0; a < p; a++ {
			xtx.Set(a, a, xtx.At(a, a)+1e-10)
		}
	}

	l, err := Cholesky(xtx)
	if err != nil {
		return nil, err
	}
	w, err := SolveCholesky(l, xty)
	if err != nil {
		return nil, err
	}
	m := &LinearModel{Weights: w[:d]}
	if opts.FitIntercept {
		m.Intercept = w[d]
	}
	return m, nil
}

// Predict returns the model output for a single feature vector.
func (m *LinearModel) Predict(x []float64) float64 {
	s := m.Intercept
	for i, w := range m.Weights {
		s += w * x[i]
	}
	return s
}

// LogisticModel is a fitted binary logistic-regression model. It predicts
// P(y=1 | x) = sigmoid(wᵀx + b).
type LogisticModel struct {
	Weights   []float64
	Intercept float64
}

// LogisticOptions configures FitLogistic.
type LogisticOptions struct {
	// Lambda is the L2 penalty (not applied to the intercept).
	Lambda float64
	// MaxIter bounds the number of Newton iterations (default 50).
	MaxIter int
	// Tol is the convergence tolerance on the max gradient norm
	// (default 1e-8).
	Tol float64
}

// FitLogistic fits binary logistic regression with Newton–Raphson
// (iteratively reweighted least squares). Labels must be 0 or 1.
func FitLogistic(x [][]float64, y []float64, opts LogisticOptions) (*LogisticModel, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("mathx: no observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("mathx: %d rows but %d labels", n, len(y))
	}
	d := len(x[0])
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	p := d + 1 // always fit an intercept
	w := make([]float64, p)

	row := make([]float64, p)
	grad := make([]float64, p)
	for iter := 0; iter < opts.MaxIter; iter++ {
		hess := NewMatrix(p, p)
		for i := range grad {
			grad[i] = 0
		}
		for i := 0; i < n; i++ {
			if len(x[i]) != d {
				return nil, fmt.Errorf("mathx: row %d has %d features, want %d", i, len(x[i]), d)
			}
			if y[i] != 0 && y[i] != 1 {
				return nil, fmt.Errorf("mathx: label %g at row %d is not 0/1", y[i], i)
			}
			copy(row, x[i])
			row[d] = 1
			z := 0.0
			for j := 0; j < p; j++ {
				z += w[j] * row[j]
			}
			mu := Sigmoid(z)
			resid := mu - y[i]
			wt := mu * (1 - mu)
			if wt < 1e-9 {
				wt = 1e-9
			}
			for a := 0; a < p; a++ {
				grad[a] += resid * row[a]
				for b := a; b < p; b++ {
					hess.Set(a, b, hess.At(a, b)+wt*row[a]*row[b])
				}
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < a; b++ {
				hess.Set(a, b, hess.At(b, a))
			}
		}
		for a := 0; a < d; a++ {
			grad[a] += opts.Lambda * w[a]
			hess.Set(a, a, hess.At(a, a)+opts.Lambda)
		}
		// Levenberg-style jitter for stability.
		for a := 0; a < p; a++ {
			hess.Set(a, a, hess.At(a, a)+1e-9)
		}
		step, err := SolveLinear(hess, grad)
		if err != nil {
			return nil, err
		}
		maxG := 0.0
		for a := 0; a < p; a++ {
			w[a] -= step[a]
			if g := math.Abs(grad[a]); g > maxG {
				maxG = g
			}
		}
		if maxG < opts.Tol {
			break
		}
	}
	return &LogisticModel{Weights: w[:d], Intercept: w[d]}, nil
}

// Predict returns P(y=1 | x).
func (m *LogisticModel) Predict(x []float64) float64 {
	z := m.Intercept
	for i, w := range m.Weights {
		z += w * x[i]
	}
	return Sigmoid(z)
}

// Sigmoid is the numerically stable logistic function 1/(1+e^-z).
func Sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
