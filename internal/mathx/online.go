package mathx

import "math"

// Welford accumulates mean and variance online in O(1) memory using
// Welford's numerically stable recurrence — the right tool when a
// measurement pipeline streams rewards and materializing the slice is
// wasteful.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (0 for n < 2).
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Min returns the smallest observation (0 before any observation).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 before any observation).
func (w *Welford) Max() float64 { return w.max }

// Summary converts the accumulator into a Summary.
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.mean, Min: w.min, Max: w.max, Std: w.StdDev()}
}

// Reservoir maintains a uniform random sample of fixed size k over a
// stream of unknown length (Vitter's algorithm R). Useful for keeping a
// bounded, unbiased subsample of a long trace for diagnostics.
type Reservoir struct {
	k      int
	seen   int
	sample []float64
	rng    *RNG
}

// NewReservoir creates a reservoir of capacity k (k >= 1 is enforced).
func NewReservoir(k int, rng *RNG) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, sample: make([]float64, 0, k), rng: rng}
}

// Add offers one stream element.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.sample[j] = x
	}
}

// Sample returns the current sample (do not mutate).
func (r *Reservoir) Sample() []float64 { return r.sample }

// Seen returns the number of elements offered.
func (r *Reservoir) Seen() int { return r.seen }
