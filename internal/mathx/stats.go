package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two observations).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs. It panics on an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("mathx: quantile %g out of [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the descriptive statistics the paper reports for each
// experiment (mean, minimum and maximum over repeated runs), plus the
// standard deviation for convenience.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Std            float64
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{N: len(xs), Mean: Mean(xs), Min: min, Max: max, Std: StdDev(xs)}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g min=%.4g max=%.4g std=%.4g n=%d", s.Mean, s.Min, s.Max, s.Std, s.N)
}

// RelativeError returns |truth - estimate| / |truth|. When truth is zero
// it falls back to the absolute error, matching the convention used when
// reproducing the paper's relative-error metric on near-zero rewards.
func RelativeError(truth, estimate float64) float64 {
	if truth == 0 {
		return math.Abs(estimate)
	}
	return math.Abs(truth-estimate) / math.Abs(truth)
}

// WeightedMean returns Σ wᵢxᵢ / Σ wᵢ. It returns 0 when the total weight
// is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("mathx: WeightedMean length mismatch")
	}
	num, den := 0.0, 0.0
	for i := range xs {
		num += ws[i] * xs[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// EffectiveSampleSize returns Kish's effective sample size
// (Σw)² / Σw² for a vector of importance weights. It is a standard
// diagnostic for IPS-style estimators: values much smaller than len(ws)
// signal poor overlap between logging and target policies.
func EffectiveSampleSize(ws []float64) float64 {
	sum, sumSq := 0.0, 0.0
	for _, w := range ws {
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi].
// Values outside the range are clamped into the terminal bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 {
		panic("mathx: Histogram needs at least one bin")
	}
	if hi <= lo {
		panic("mathx: Histogram needs hi > lo")
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// Correlation returns the Pearson correlation coefficient of xs and ys,
// or 0 when either series is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mathx: Correlation length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
