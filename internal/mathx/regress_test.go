package mathx

import (
	"math"
	"testing"
)

func TestRidgeRecoversLine(t *testing.T) {
	// y = 3x + 2 exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		y = append(y, 3*v+2)
	}
	m, err := Ridge(x, y, RidgeOptions{FitIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Weights[0], 3, 1e-6) || !almostEqual(m.Intercept, 2, 1e-5) {
		t.Fatalf("got w=%g b=%g, want 3, 2", m.Weights[0], m.Intercept)
	}
	if got := m.Predict([]float64{10}); !almostEqual(got, 32, 1e-5) {
		t.Fatalf("Predict(10) = %g, want 32", got)
	}
}

func TestRidgeMultivariateNoisy(t *testing.T) {
	rng := NewRNG(7)
	true_ := []float64{1.5, -2.0, 0.5}
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		row := []float64{rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)}
		target := 4.0
		for j, w := range true_ {
			target += w * row[j]
		}
		x = append(x, row)
		y = append(y, target+rng.Normal(0, 0.05))
	}
	m, err := Ridge(x, y, RidgeOptions{Lambda: 1e-6, FitIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	for j, w := range true_ {
		if !almostEqual(m.Weights[j], w, 0.05) {
			t.Fatalf("weight[%d] = %g, want ~%g", j, m.Weights[j], w)
		}
	}
	if !almostEqual(m.Intercept, 4, 0.05) {
		t.Fatalf("intercept = %g, want ~4", m.Intercept)
	}
}

func TestRidgeShrinkage(t *testing.T) {
	// Heavier regularization must shrink coefficients toward zero.
	var x [][]float64
	var y []float64
	rng := NewRNG(11)
	for i := 0; i < 50; i++ {
		v := rng.Normal(0, 1)
		x = append(x, []float64{v})
		y = append(y, 5*v)
	}
	small, _ := Ridge(x, y, RidgeOptions{Lambda: 0.01})
	big, _ := Ridge(x, y, RidgeOptions{Lambda: 1000})
	if math.Abs(big.Weights[0]) >= math.Abs(small.Weights[0]) {
		t.Fatalf("lambda=1000 gave |w|=%g, not smaller than lambda=0.01 |w|=%g",
			math.Abs(big.Weights[0]), math.Abs(small.Weights[0]))
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := Ridge(nil, nil, RidgeOptions{}); err == nil {
		t.Fatal("expected error for no data")
	}
	if _, err := Ridge([][]float64{{1}}, []float64{1, 2}, RidgeOptions{}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Ridge([][]float64{{}}, []float64{1}, RidgeOptions{}); err == nil {
		t.Fatal("expected error for zero-dim features")
	}
	if _, err := Ridge([][]float64{{1}}, []float64{1}, RidgeOptions{Lambda: -1}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
	if _, err := Ridge([][]float64{{1}, {1, 2}}, []float64{1, 2}, RidgeOptions{}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestLogisticSeparatesClasses(t *testing.T) {
	rng := NewRNG(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		// P(y=1) = sigmoid(2*x1 - 1*x2 + 0.5)
		row := []float64{rng.Normal(0, 1), rng.Normal(0, 1)}
		p := Sigmoid(2*row[0] - row[1] + 0.5)
		label := 0.0
		if rng.Bernoulli(p) {
			label = 1
		}
		x = append(x, row)
		y = append(y, label)
	}
	m, err := FitLogistic(x, y, LogisticOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[0] < 1 || m.Weights[0] > 3.5 {
		t.Fatalf("w0 = %g, want near 2", m.Weights[0])
	}
	if m.Weights[1] > -0.3 || m.Weights[1] < -2.5 {
		t.Fatalf("w1 = %g, want near -1", m.Weights[1])
	}
	// Predictions should be calibrated in direction.
	if m.Predict([]float64{3, 0}) < 0.9 {
		t.Fatal("strongly positive point should predict near 1")
	}
	if m.Predict([]float64{-3, 0}) > 0.1 {
		t.Fatal("strongly negative point should predict near 0")
	}
}

func TestLogisticErrors(t *testing.T) {
	if _, err := FitLogistic(nil, nil, LogisticOptions{}); err == nil {
		t.Fatal("expected error for no data")
	}
	if _, err := FitLogistic([][]float64{{1}}, []float64{1, 0}, LogisticOptions{}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := FitLogistic([][]float64{{1}}, []float64{0.5}, LogisticOptions{}); err == nil {
		t.Fatal("expected error for non-binary label")
	}
	if _, err := FitLogistic([][]float64{{1}, {1, 2}}, []float64{0, 1}, LogisticOptions{}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEqual(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(40) <= 0.999999 {
		t.Fatal("Sigmoid(40) should be ~1")
	}
	if Sigmoid(-40) >= 1e-6 {
		t.Fatal("Sigmoid(-40) should be ~0")
	}
	// Symmetry: sigmoid(-z) = 1 - sigmoid(z).
	for _, z := range []float64{0.1, 1, 5, 17.3} {
		if !almostEqual(Sigmoid(-z), 1-Sigmoid(z), 1e-12) {
			t.Fatalf("symmetry violated at z=%g", z)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}
