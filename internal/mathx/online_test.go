package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesBatch(t *testing.T) {
	rng := NewRNG(1)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.Normal(5, 3)
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean %g vs %g", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("variance %g vs %g", w.Variance(), Variance(xs))
	}
	min, max := MinMax(xs)
	if w.Min() != min || w.Max() != max {
		t.Fatal("min/max mismatch")
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
	s := w.Summary()
	if s.N != 1000 || !almostEqual(s.Std, StdDev(xs), 1e-9) {
		t.Fatalf("summary %+v", s)
	}
	if !almostEqual(w.StdErr(), StdDev(xs)/math.Sqrt(1000), 1e-12) {
		t.Fatalf("stderr %g", w.StdErr())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should be zero")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Variance() != 0 || w.Min() != 7 || w.Max() != 7 {
		t.Fatal("single observation broken")
	}
}

// Property: Welford agrees with the batch formulas on arbitrary data.
func TestWelfordAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Normal(0, 1e3)
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-6) &&
			almostEqual(w.Variance(), Variance(xs), 1e-3*Variance(xs)+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rng := NewRNG(2)
	r := NewReservoir(10, rng)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if len(r.Sample()) != 5 || r.Seen() != 5 {
		t.Fatalf("sample %v seen %d", r.Sample(), r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 stream elements should land in a k=10 reservoir with
	// probability 1/10.
	rng := NewRNG(3)
	counts := make([]int, 100)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(10, rng)
		for i := 0; i < 100; i++ {
			r.Add(float64(i))
		}
		for _, v := range r.Sample() {
			counts[int(v)]++
		}
	}
	for i, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.1) > 0.015 {
			t.Fatalf("element %d selected with frequency %g, want ~0.1", i, p)
		}
	}
}

func TestReservoirMinimumCapacity(t *testing.T) {
	r := NewReservoir(0, NewRNG(4))
	r.Add(1)
	r.Add(2)
	if len(r.Sample()) != 1 {
		t.Fatalf("capacity should clamp to 1, got %d", len(r.Sample()))
	}
}
