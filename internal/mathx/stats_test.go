package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases should return 0")
	}
}

func TestMinMaxQuantileMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	min, max := MinMax(xs)
	if min != 1 || max != 9 {
		t.Fatalf("MinMax = %g,%g", min, max)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("median = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("median = %g, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("singleton quantile = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	mustPanic(t, func() { Quantile(nil, 0.5) })
	mustPanic(t, func() { Quantile([]float64{1}, -0.1) })
	mustPanic(t, func() { MinMax(nil) })
	mustPanic(t, func() { Summarize(nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(10, 8); !almostEqual(got, 0.2, 1e-12) {
		t.Fatalf("RelativeError = %g, want 0.2", got)
	}
	if got := RelativeError(0, 0.7); got != 0.7 {
		t.Fatalf("zero-truth fallback = %g, want 0.7", got)
	}
	if got := RelativeError(-4, -5); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("negative truth: %g, want 0.25", got)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); got != 2 {
		t.Fatalf("uniform weights: %g", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 1}); got != 3 {
		t.Fatalf("one-hot weights: %g", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 0}); got != 0 {
		t.Fatalf("zero weights should give 0, got %g", got)
	}
	mustPanic(t, func() { WeightedMean([]float64{1}, []float64{1, 2}) })
}

func TestEffectiveSampleSize(t *testing.T) {
	// Uniform weights: ESS = n.
	ws := []float64{1, 1, 1, 1}
	if got := EffectiveSampleSize(ws); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("uniform ESS = %g, want 4", got)
	}
	// One dominant weight: ESS ~ 1.
	if got := EffectiveSampleSize([]float64{100, 0.01, 0.01}); got > 1.1 {
		t.Fatalf("dominant-weight ESS = %g, want ~1", got)
	}
	if got := EffectiveSampleSize([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-weight ESS = %g", got)
	}
}

// Property: ESS is always in (0, n] for positive weights.
func TestEffectiveSampleSizeBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = r.Exponential(1) + 1e-9
		}
		ess := EffectiveSampleSize(ws)
		return ess > 0 && ess <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.2, 0.9, -5, 7}, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("Histogram = %v", counts)
	}
	mustPanic(t, func() { Histogram(nil, 0, 1, 0) })
	mustPanic(t, func() { Histogram(nil, 1, 0, 3) })
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Correlation(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("self-correlation = %g", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("anti-correlation = %g", got)
	}
	if got := Correlation(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series should give 0, got %g", got)
	}
	if got := Correlation([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("short series should give 0, got %g", got)
	}
	mustPanic(t, func() { Correlation([]float64{1}, []float64{1, 2}) })
}
