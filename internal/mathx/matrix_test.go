package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %g, want 7", got)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone is not independent of original")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g, want 3", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product[%d][%d] = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestMatrixTransposeAddScale(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 || tr.At(2, 1) != 6 {
		t.Fatalf("bad transpose: %v", tr)
	}
	sum, err := a.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 2) != 12 {
		t.Fatalf("Add: got %g, want 12", sum.At(1, 2))
	}
	sc := a.Scale(2)
	if sc.At(0, 1) != 4 {
		t.Fatalf("Scale: got %g, want 4", sc.At(0, 1))
	}
	if _, err := a.Add(NewMatrix(1, 1)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestSolveLinearNonSquare(t *testing.T) {
	if _, err := SolveLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("expected non-square error")
	}
	if _, err := SolveLinear(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

// Property: for random well-conditioned SPD systems, solving and then
// multiplying back recovers the right-hand side.
func TestSolveLinearRoundTripProperty(t *testing.T) {
	rng := NewRNG(42)
	f := func(seed uint8) bool {
		r := NewRNG(int64(seed) + rng.Int63n(1000))
		n := 1 + r.Intn(6)
		// A = B Bᵀ + n·I is SPD and well conditioned.
		b := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.Normal(0, 1))
			}
		}
		bt := b.Transpose()
		a, _ := b.Mul(bt)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.Normal(0, 3)
		}
		x, err := SolveLinear(a, rhs)
		if err != nil {
			return false
		}
		back, _ := a.MulVec(x)
		for i := range rhs {
			if !almostEqual(back[i], rhs[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyAndSolve(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Known factorization of this classic example.
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(l.At(i, j), want[i][j], 1e-9) {
				t.Fatalf("L[%d][%d] = %g, want %g", i, j, l.At(i, j), want[i][j])
			}
		}
	}
	x, err := SolveCholesky(l, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	back, _ := a.MulVec(x)
	for i, b := range []float64{1, 2, 3} {
		if !almostEqual(back[i], b, 1e-8) {
			t.Fatalf("round trip failed: A·x = %v", back)
		}
	}
}

func TestCholeskyNotPositiveDefinite(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

// Property: Cholesky factor satisfies L·Lᵀ = A for random SPD matrices.
func TestCholeskyFactorizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(5)
		b := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.Normal(0, 1))
			}
		}
		a, _ := b.Mul(b.Transpose())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		llt, _ := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(llt.At(i, j), a.At(i, j), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p, _ := a.Mul(id)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatal("A·I != A")
			}
		}
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}})
	if got := m.String(); got != "[1 2]\n" {
		t.Fatalf("String() = %q", got)
	}
}
