package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalMoments(t *testing.T) {
	r := NewRNG(1)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Normal(3, 2)
	}
	if m := Mean(xs); !almostEqual(m, 3, 0.05) {
		t.Fatalf("mean = %g, want ~3", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 0.05) {
		t.Fatalf("std = %g, want ~2", s)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced %g", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(3)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Exponential(4)
	}
	if m := Mean(xs); !almostEqual(m, 0.25, 0.01) {
		t.Fatalf("mean = %g, want ~0.25", m)
	}
	mustPanic(t, func() { r.Exponential(0) })
}

func TestBernoulli(t *testing.T) {
	r := NewRNG(4)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; !almostEqual(p, 0.3, 0.01) {
		t.Fatalf("frequency = %g, want ~0.3", p)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := NewRNG(5)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if !almostEqual(got, want, 0.01) {
			t.Fatalf("bucket %d frequency %g, want ~%g", i, got, want)
		}
	}
	mustPanic(t, func() { r.Categorical([]float64{0, 0}) })
	mustPanic(t, func() { r.Categorical([]float64{-1, 2}) })
}

func TestCategoricalDegenerateWeight(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if got := r.Categorical([]float64{0, 0, 5, 0}); got != 2 {
			t.Fatalf("one-hot weights chose %d", got)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(7)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		xs := make([]float64, 40000)
		for i := range xs {
			xs[i] = r.Gamma(shape)
		}
		if m := Mean(xs); !almostEqual(m, shape, 0.05*math.Max(1, shape)) {
			t.Fatalf("Gamma(%g) mean = %g", shape, m)
		}
	}
	mustPanic(t, func() { r.Gamma(0) })
}

func TestDirichletSimplex(t *testing.T) {
	r := NewRNG(8)
	alpha := []float64{1, 2, 3}
	for i := 0; i < 200; i++ {
		p := r.Dirichlet(alpha)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative component %g", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("components sum to %g", sum)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below scale: %g", v)
		}
	}
	mustPanic(t, func() { r.Pareto(0, 1) })
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	r := NewRNG(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(10, 1)
	}
	lo, hi := r.BootstrapCI(xs, 0.95, 500)
	if lo >= hi {
		t.Fatalf("degenerate CI [%g, %g]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%g, %g] excludes the true mean 10", lo, hi)
	}
	// Width should be around 2*1.96/sqrt(500) ~ 0.175.
	if w := hi - lo; w > 0.5 {
		t.Fatalf("CI too wide: %g", w)
	}
	if lo, hi := r.BootstrapCI(nil, 0.95, 10); lo != 0 || hi != 0 {
		t.Fatal("empty input should give zero CI")
	}
	mustPanic(t, func() { r.BootstrapCI(xs, 1.5, 10) })
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Normal(0, 1) != b.Normal(0, 1) {
			t.Fatal("same seed produced different streams")
		}
	}
}

// Property: Categorical never returns an index with zero weight.
func TestCategoricalZeroWeightProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(8)
		ws := make([]float64, n)
		zero := r.Intn(n)
		for i := range ws {
			if i != zero {
				ws[i] = r.Float64() + 0.01
			}
		}
		for k := 0; k < 50; k++ {
			if r.Categorical(ws) == zero {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
