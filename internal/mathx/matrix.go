// Package mathx provides the small dense linear-algebra, statistics and
// random-sampling toolkit that the rest of the repository builds on.
//
// The package is intentionally self-contained (standard library only) and
// favours clarity and numerical robustness over raw speed: the matrices
// involved in trace-driven evaluation are tiny (tens of features), so
// O(n^3) dense algorithms with partial pivoting are entirely adequate.
package mathx

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zero-valued matrix with the given shape.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mathx: empty row data")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mathx: row %d has %d entries, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mathx: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mathx: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mathx: cannot multiply %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("mathx: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m+b element-wise.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("mathx: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Scale returns a new matrix with every element multiplied by s.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: matrix is singular or not positive definite")

// SolveLinear solves the square system A x = b using Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mathx: SolveLinear needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	// Work on copies.
	aug := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := aug.At(col, j)
				aug.Set(col, j, aug.At(pivot, j))
				aug.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= aug.At(i, j) * x[j]
		}
		x[i] = s / aug.At(i, i)
	}
	return x, nil
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix A. It returns ErrSingular when A is
// not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mathx: Cholesky needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
