package wideevent

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Journal.
type Options struct {
	// Capacity is the ring size: how many retained events are held for
	// /debug/events (minimum 1). Old events are overwritten once the
	// ring wraps, bounding memory regardless of traffic.
	Capacity int
	// SampleRate is the keep probability for healthy events (no error,
	// status < 400, not degraded, not slow). >= 1 keeps everything,
	// 0 keeps only the tail (errors, degraded, slow). Error, degraded
	// and slow events are ALWAYS kept — the tail bias that makes the
	// journal useful at low sample rates.
	SampleRate float64
	// SlowMs marks a healthy event "slow" (always kept) at or above
	// this total duration; 0 disables the slow criterion.
	SlowMs float64
	// Seed drives the sampling RNG. Identical seeds and identical
	// emission sequences make identical retention decisions, so tests
	// can assert journal contents byte for byte.
	Seed uint64
	// Now is the journal clock; nil means time.Now. Everything
	// time-shaped in an event — Time, DurationMs, PhaseMs — flows
	// through it, so a fixed clock yields byte-deterministic events.
	Now func() time.Time
}

// Journal is the lock-free wide-event ring: emission is an atomic
// sequence bump plus an atomic pointer store (the obs.TraceRecorder
// design), cheap enough for every request path. An optional JSONL
// sink receives each retained event as one line via a non-blocking
// bounded queue and a single background drainer; observers (the SLO
// engine) see every emitted event, retained or sampled out.
type Journal struct {
	opts  Options
	slots []atomic.Pointer[Event]
	next  atomic.Uint64

	emitted    atomic.Uint64
	sampledOut atomic.Uint64
	healthyN   atomic.Uint64

	observers atomic.Pointer[[]func(*Event)]

	sinkMu      sync.Mutex                     // serializes SetSink swaps, not line writes
	sink        atomic.Pointer[eventSinkState] // guarded by sinkMu (writes)
	sinkDropped atomic.Uint64
}

// NewJournal builds a journal. Invalid options are clamped: capacity
// to at least 1, a negative sample rate to 0.
func NewJournal(opts Options) *Journal {
	if opts.Capacity < 1 {
		opts.Capacity = 1
	}
	if opts.SampleRate < 0 {
		opts.SampleRate = 0
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Journal{
		opts:  opts,
		slots: make([]atomic.Pointer[Event], opts.Capacity),
	}
}

// now reads the journal clock; nil-safe so Builders detached from a
// journal (nil receiver paths) never dereference one.
func (j *Journal) now() time.Time {
	if j == nil {
		return time.Time{}
	}
	return j.opts.Now()
}

// Begin opens the request's Builder. Nil-safe: a nil journal returns
// a nil Builder whose methods all no-op, so disabled journalling
// costs one pointer check per annotation.
func (j *Journal) Begin(requestID, route string) *Builder {
	if j == nil {
		return nil
	}
	t := j.now()
	return &Builder{j: j, start: t, ev: Event{Time: t, RequestID: requestID, Route: route}}
}

// Observe registers fn to receive EVERY emitted event — including
// ones tail-sampling then discards — synchronously on the emitting
// goroutine. Register observers before serving traffic; fn must be
// safe for concurrent calls.
func (j *Journal) Observe(fn func(*Event)) {
	if j == nil || fn == nil {
		return
	}
	for {
		old := j.observers.Load()
		var next []func(*Event)
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, fn)
		if j.observers.CompareAndSwap(old, &next) {
			return
		}
	}
}

// emit commits one finished event: observers first (they see the
// unsampled stream), then the tail-biased retention decision, then
// the ring store and the optional sink hand-off.
//
//lint:hot perrecord
func (j *Journal) emit(ev *Event) {
	if j == nil || ev == nil {
		return
	}
	j.emitted.Add(1)
	if obs := j.observers.Load(); obs != nil {
		for _, fn := range *obs {
			fn(ev)
		}
	}
	if !j.keep(ev) {
		j.sampledOut.Add(1)
		return
	}
	seq := j.next.Add(1) - 1
	ev.Seq = seq
	j.slots[seq%uint64(len(j.slots))].Store(ev)
	if st := j.sink.Load(); st != nil {
		if b, err := json.Marshal(ev); err == nil {
			select {
			//lint:allow hotalloc sink path only runs when -events-out is set; Marshal already allocated b and the newline append reuses its spare capacity
			case st.ch <- append(b, '\n'):
			default:
				j.sinkDropped.Add(1)
			}
		}
	}
}

// keep is the tail-biased retention policy: the whole point of the
// journal is that the events worth debugging — errors, degraded
// answers, slow requests — are never the ones sampled away.
func (j *Journal) keep(ev *Event) bool {
	if ev.Error != "" || ev.Status >= 400 || ev.Degraded {
		return true
	}
	if j.opts.SlowMs > 0 && ev.DurationMs >= j.opts.SlowMs {
		return true
	}
	if j.opts.SampleRate >= 1 {
		return true
	}
	if j.opts.SampleRate <= 0 {
		return false
	}
	// Deterministic draw: the n-th healthy event's fate depends only
	// on (seed, n), so identical request sequences retain identical
	// sets at any worker count that preserves emission order.
	n := j.healthyN.Add(1)
	return unitFloat(j.opts.Seed, n) < j.opts.SampleRate
}

// unitFloat maps (seed, n) to a uniform [0,1) draw via the SplitMix64
// finalizer — the same generator the repo's synthetic workloads use,
// chosen for determinism, not cryptography.
func unitFloat(seed, n uint64) float64 {
	z := seed + n*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Events returns the retained events in commit order (oldest first).
// Concurrent emitters may overwrite slots during the snapshot; each
// returned event is internally consistent because slots hold
// immutable pointers.
func (j *Journal) Events() []*Event {
	if j == nil {
		return nil
	}
	out := make([]*Event, 0, len(j.slots))
	for i := range j.slots {
		if p := j.slots[i].Load(); p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Capacity returns the ring size.
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Stats is the journal's health snapshot, surfaced on /healthz and
// /debug/vars: Emitted counts every finished request, Recorded the
// retained ones, SampledOut the healthy events the tail bias
// discarded, SinkDropped the JSONL lines lost to a slow sink.
type Stats struct {
	Emitted     uint64 `json:"emitted"`
	Recorded    uint64 `json:"recorded"`
	SampledOut  uint64 `json:"sampledOut"`
	SinkDropped uint64 `json:"sinkDropped"`
	Buffered    int    `json:"buffered"`
	Capacity    int    `json:"capacity"`
}

// Stats snapshots the journal counters; nil-safe (all zeros).
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	recorded := j.next.Load()
	buffered := int(recorded)
	if buffered > len(j.slots) {
		buffered = len(j.slots)
	}
	return Stats{
		Emitted:     j.emitted.Load(),
		Recorded:    recorded,
		SampledOut:  j.sampledOut.Load(),
		SinkDropped: j.sinkDropped.Load(),
		Buffered:    buffered,
		Capacity:    len(j.slots),
	}
}

// SinkDropped reports JSONL lines discarded because the sink queue
// was full; nil-safe for the metrics sampler.
func (j *Journal) SinkDropped() uint64 {
	if j == nil {
		return 0
	}
	return j.sinkDropped.Load()
}

// eventSinkBufferLines bounds the drainer queue, matching the trace
// recorder's sink.
const eventSinkBufferLines = 1024

// eventSinkState is one installed sink: queue, quit signal, and done
// closed when the drainer has flushed and exited.
type eventSinkState struct {
	ch   chan []byte
	quit chan struct{}
	done chan struct{}
}

func (st *eventSinkState) drain(w func(line []byte)) {
	defer close(st.done)
	for {
		select {
		case line := <-st.ch:
			w(line)
		case <-st.quit:
			for {
				select {
				case line := <-st.ch:
					w(line)
				default:
					return
				}
			}
		}
	}
}

// SetSink installs (or, with nil, removes) the JSONL export sink —
// the same non-blocking contract as obs.TraceRecorder.SetSink: lines
// are marshalled on the emitting goroutine, written serially by one
// background drainer, and dropped (counted) rather than blocking a
// request when the queue is full. Replacing or removing a sink
// flushes the old queue; after SetSink(nil) returns, every delivered
// line has been written.
func (j *Journal) SetSink(w func(line []byte)) {
	if j == nil {
		return
	}
	j.sinkMu.Lock()
	defer j.sinkMu.Unlock()
	var st *eventSinkState
	if w != nil {
		st = &eventSinkState{
			ch:   make(chan []byte, eventSinkBufferLines),
			quit: make(chan struct{}),
			done: make(chan struct{}),
		}
		go st.drain(w)
	}
	if old := j.sink.Swap(st); old != nil {
		close(old.quit)
		<-old.done
	}
}
