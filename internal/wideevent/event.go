// Package wideevent is the serving stack's request journal: every
// completed request emits exactly one flat, canonical "wide event"
// carrying the full provenance of the answer — which estimator regime
// produced it (ESS/N, max weight, zero-support), which stream epoch
// and reward-model staleness it was served from, the bias grade, the
// degradation reasons and fallback estimator, the bootstrap skip
// count, and the WAL ack for ingest — plus total and per-phase
// latencies mirroring the request's span tree.
//
// The paper's core warning is that biased traces silently poison
// decisions; Voloshin et al.'s companion observation is that OPE
// results computed under disparate, unrecorded conditions cannot be
// compared or audited after the fact. The wide event is that record:
// one row per request, flat enough to filter on, kept in a lock-free
// ring (the obs.TraceRecorder design) with tail-biased retention —
// error, degraded and slow events are always kept; healthy ones are
// probabilistically sampled under a seeded RNG so retention decisions
// are reproducible in tests.
package wideevent

import (
	"context"
	"time"
)

// Event is one completed request, flattened. Field names are the
// canonical lowerCamel vocabulary shared by /debug/events filters,
// the JSONL export and the SLO engine; dynamic annotations go through
// Builder.Annotate into Extra under the same naming contract
// (enforced by drevallint's obshygiene check).
type Event struct {
	// Seq is the journal commit sequence (retention order); events
	// sampled out never get one.
	Seq uint64 `json:"seq"`
	// Time is the request start, read from the journal's clock.
	Time time.Time `json:"time"`
	// RequestID is the X-Request-Id the response carried.
	RequestID string `json:"requestId"`
	// Route is the instrumented route, e.g. "/evaluate".
	Route  string `json:"route"`
	Status int    `json:"status"`
	// DurationMs is the total request wall time; PhaseMs breaks it
	// down by evaluation phase, mirroring the span tree (build_view,
	// diagnose, fit_model, …). Both come from the journal clock, so a
	// fixed test clock makes whole events byte-deterministic.
	DurationMs float64            `json:"durationMs"`
	PhaseMs    map[string]float64 `json:"phaseMs,omitempty"`

	// Policy is the request's policy spec (evaluate/diagnose only).
	Policy string `json:"policy,omitempty"`

	// Estimator regime — the overlap diagnostics of the answer
	// (the paper's §4.1 trust conditions, recorded per request).
	ESSRatio    float64 `json:"essRatio,omitempty"`
	MaxWeight   float64 `json:"maxWeight,omitempty"`
	ZeroSupport int     `json:"zeroSupport,omitempty"`

	// BiasGrade is the bias observatory's verdict on the request's
	// trace ("healthy", "watch", "drift"), when the observatory ran.
	BiasGrade string `json:"biasGrade,omitempty"`

	// Degradation path: whether the response was tagged degraded,
	// the machine-readable reason codes, and the canonical fallback
	// estimator name ("snips-clip", "snips-stream") when one was
	// attached.
	Degraded          bool     `json:"degraded,omitempty"`
	DegradedReasons   []string `json:"degradedReasons,omitempty"`
	FallbackEstimator string   `json:"fallbackEstimator,omitempty"`

	// Bootstrap accounting (evaluate with options.bootstrap > 0).
	BootstrapResamples int `json:"bootstrapResamples,omitempty"`
	BootstrapSkipped   int `json:"bootstrapSkipped,omitempty"`

	// Streamed-serving provenance: set when the answer came from
	// streaming aggregates rather than an inline trace.
	Streamed         bool `json:"streamed,omitempty"`
	StreamEpoch      int  `json:"streamEpoch,omitempty"`
	ModelEpoch       int  `json:"modelEpoch,omitempty"`
	StalenessRecords int  `json:"stalenessRecords,omitempty"`

	// WAL ack (ingest only): the durability coordinates the client
	// was acked with.
	WALSeq     uint64 `json:"walSeq,omitempty"`
	WALEpoch   int    `json:"walEpoch,omitempty"`
	WALSegment string `json:"walSegment,omitempty"`
	WALDurable bool   `json:"walDurable,omitempty"`

	// Error is the first failure recorded for the request (handler
	// error detail, or "status NNN" filled by the middleware for any
	// 4xx/5xx the handler left unexplained).
	Error string `json:"error,omitempty"`

	// Extra holds dynamic lowerCamel-keyed annotations.
	Extra map[string]string `json:"extra,omitempty"`
}

// Field projects a named event field to its filter-language string
// form. Unknown names fall through to Extra; absent values report
// ok=false, so a filter on a field an event lacks simply fails to
// match instead of erroring.
func (ev *Event) Field(name string) (value string, ok bool) {
	switch name {
	case "requestId":
		return ev.RequestID, true
	case "route":
		return ev.Route, true
	case "status":
		return itoa(ev.Status), true
	case "policy":
		return ev.Policy, ev.Policy != ""
	case "biasGrade":
		return ev.BiasGrade, ev.BiasGrade != ""
	case "fallbackEstimator":
		return ev.FallbackEstimator, ev.FallbackEstimator != ""
	case "error":
		return ev.Error, ev.Error != ""
	case "streamed":
		return boolString(ev.Streamed), true
	case "walSegment":
		return ev.WALSegment, ev.WALSegment != ""
	default:
		v, ok := ev.Extra[name]
		return v, ok
	}
}

func boolString(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// ctxKey carries the request's Builder through the context, so the
// handler layers can annotate the event the middleware will finish.
type ctxKey struct{}

// ContextWith attaches b to ctx.
func ContextWith(ctx context.Context, b *Builder) context.Context {
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext returns the Builder attached with ContextWith, or nil.
// Combined with the nil-safe Builder methods, callers can annotate
// unconditionally.
func FromContext(ctx context.Context) *Builder {
	b, _ := ctx.Value(ctxKey{}).(*Builder)
	return b
}

// Builder accumulates one request's event between Begin and Finish.
// All methods are nil-receiver safe, so code paths without a journal
// (offline tools, the /metrics route) cost a pointer check. A Builder
// is owned by one request goroutine; it is not safe for concurrent
// annotation.
type Builder struct {
	j     *Journal
	start time.Time
	ev    Event
	done  bool
}

// Phase starts timing one named evaluation phase on the journal
// clock and returns the func that commits it; call it when the phase
// ends. Repeated phases accumulate. The phase timings mirror the
// request's child spans, but flattened into the one event.
func (b *Builder) Phase(name string) func() {
	if b == nil {
		return func() {}
	}
	t0 := b.j.now()
	return func() {
		if b.ev.PhaseMs == nil {
			b.ev.PhaseMs = make(map[string]float64, 8)
		}
		b.ev.PhaseMs[name] += b.j.now().Sub(t0).Seconds() * 1000
	}
}

// Annotate attaches one dynamic key=value to the event. Keys share
// the canonical field namespace: non-empty lowerCamel, linted at the
// call site by drevallint's obshygiene check.
func (b *Builder) Annotate(key, value string) {
	if b == nil {
		return
	}
	if b.ev.Extra == nil {
		b.ev.Extra = make(map[string]string, 4)
	}
	b.ev.Extra[key] = value
}

// SetPolicy records the request's policy spec.
func (b *Builder) SetPolicy(spec string) {
	if b != nil {
		b.ev.Policy = spec
	}
}

// SetRegime records the estimator regime the answer was computed in.
func (b *Builder) SetRegime(essRatio, maxWeight float64, zeroSupport int) {
	if b != nil {
		b.ev.ESSRatio = essRatio
		b.ev.MaxWeight = maxWeight
		b.ev.ZeroSupport = zeroSupport
	}
}

// SetBiasGrade records the bias observatory's verdict.
func (b *Builder) SetBiasGrade(grade string) {
	if b != nil {
		b.ev.BiasGrade = grade
	}
}

// SetDegraded marks the event degraded with its reason codes.
func (b *Builder) SetDegraded(reasonCodes []string) {
	if b != nil {
		b.ev.Degraded = true
		b.ev.DegradedReasons = reasonCodes
	}
}

// SetFallback records the canonical fallback estimator name.
func (b *Builder) SetFallback(estimator string) {
	if b != nil {
		b.ev.FallbackEstimator = estimator
	}
}

// SetBootstrap records the bootstrap accounting.
func (b *Builder) SetBootstrap(resamples, skipped int) {
	if b != nil {
		b.ev.BootstrapResamples = resamples
		b.ev.BootstrapSkipped = skipped
	}
}

// SetStream records streamed-serving provenance.
func (b *Builder) SetStream(epoch, modelEpoch, stalenessRecords int) {
	if b != nil {
		b.ev.Streamed = true
		b.ev.StreamEpoch = epoch
		b.ev.ModelEpoch = modelEpoch
		b.ev.StalenessRecords = stalenessRecords
	}
}

// SetWALAck records the ingest durability ack.
func (b *Builder) SetWALAck(seq uint64, epoch int, segment string, durable bool) {
	if b != nil {
		b.ev.WALSeq = seq
		b.ev.WALEpoch = epoch
		b.ev.WALSegment = segment
		b.ev.WALDurable = durable
	}
}

// SetError records the request's failure detail. First error wins, so
// the middleware's generic "status NNN" backstop never overwrites a
// handler's specific message.
func (b *Builder) SetError(msg string) {
	if b != nil && b.ev.Error == "" {
		b.ev.Error = msg
	}
}

// Finish stamps the status and total duration and emits the event —
// exactly once; later calls are no-ops, which is what makes the
// one-event-per-request invariant enforceable from a single deferred
// call in the middleware.
func (b *Builder) Finish(status int) {
	if b == nil || b.done {
		return
	}
	b.done = true
	b.ev.Status = status
	b.ev.DurationMs = b.j.now().Sub(b.start).Seconds() * 1000
	b.j.emit(&b.ev)
}

// itoa is strconv.Itoa for the small positive ints events carry,
// inlined to keep Field allocation-free for common statuses.
func itoa(v int) string {
	switch v {
	case 200:
		return "200"
	case 400:
		return "400"
	case 422:
		return "422"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
