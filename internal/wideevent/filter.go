package wideevent

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// DefaultQueryLimit is how many matching events GET /debug/events
// returns when the query does not say; MaxQueryLimit caps limit=.
const (
	DefaultQueryLimit = 100
	MaxQueryLimit     = 1000
)

// Filter is the parsed /debug/events query: the small filter language
// is `field=value` exact matches over the canonical event fields
// (plus Extra keys), with three special keys — `minLatencyMs=` (total
// duration at least), `degraded=true|false`, and `limit=` (most
// recent N matches).
type Filter struct {
	// Limit bounds the result to the most recent N matches (commit
	// order preserved). 0 means DefaultQueryLimit.
	Limit int
	// MinLatencyMs drops events faster than this.
	MinLatencyMs float64
	// Degraded, when non-nil, requires the event's degraded flag to
	// match.
	Degraded *bool
	// Fields are the remaining exact-match conditions; every one must
	// hold (conjunction), so match order is irrelevant.
	Fields map[string]string
}

// ParseFilter builds a Filter from URL query values. Unknown field
// names are legal — they match against Extra annotations and simply
// never match events that lack them; malformed values for the typed
// keys are errors.
func ParseFilter(q url.Values) (Filter, error) {
	f := Filter{Limit: DefaultQueryLimit}
	for key, vals := range q {
		if len(vals) == 0 {
			continue
		}
		v := vals[0]
		switch key {
		case "limit":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Filter{}, fmt.Errorf("limit must be a positive integer, got %q", v)
			}
			if n > MaxQueryLimit {
				n = MaxQueryLimit
			}
			f.Limit = n
		case "minLatencyMs":
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				return Filter{}, fmt.Errorf("minLatencyMs must be a non-negative number, got %q", v)
			}
			f.MinLatencyMs = ms
		case "degraded":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return Filter{}, fmt.Errorf("degraded must be true or false, got %q", v)
			}
			f.Degraded = &b
		default:
			if f.Fields == nil {
				f.Fields = make(map[string]string, len(q))
			}
			f.Fields[key] = v
		}
	}
	return f, nil
}

// Match reports whether ev satisfies every condition.
func (f Filter) Match(ev *Event) bool {
	if ev == nil {
		return false
	}
	if f.MinLatencyMs > 0 && ev.DurationMs < f.MinLatencyMs {
		return false
	}
	if f.Degraded != nil && ev.Degraded != *f.Degraded {
		return false
	}
	for k, want := range f.Fields {
		got, ok := ev.Field(k)
		if !ok || got != want {
			return false
		}
	}
	return true
}

// Query returns the retained events matching f, oldest first, capped
// to the most recent Limit matches.
func (j *Journal) Query(f Filter) []*Event {
	evs := j.Events()
	out := make([]*Event, 0, len(evs))
	for _, ev := range evs {
		if f.Match(ev) {
			out = append(out, ev)
		}
	}
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultQueryLimit
	}
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// queryResponse is the GET /debug/events body.
type queryResponse struct {
	Stats  Stats    `json:"stats"`
	Events []*Event `json:"events"`
}

// Handler serves GET /debug/events: the filter language over the
// retained ring, plus the journal counters. Bad filter values get a
// 400 with a machine-readable error.
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, err := ParseFilter(r.URL.Query())
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		evs := j.Query(f)
		if evs == nil {
			evs = []*Event{}
		}
		_ = json.NewEncoder(w).Encode(queryResponse{Stats: j.Stats(), Events: evs})
	})
}
