package wideevent

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fixedClock returns a frozen journal clock: every duration computed
// through it is exactly zero, which is what makes retained events
// byte-deterministic in these tests.
func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t }
}

// emitHealthy finishes one healthy 200 event through the full Builder
// path.
func emitHealthy(j *Journal, id string) {
	b := j.Begin(id, "/evaluate")
	b.SetPolicy("best-observed")
	b.SetRegime(0.8, 2.5, 0)
	b.Finish(200)
}

// TestConcurrentEmitters drives the journal from several goroutines at
// the worker widths the acceptance criteria name and checks the
// accounting invariant emitted == recorded + sampledOut, the ring
// bound, and that every retained event is internally consistent.
func TestConcurrentEmitters(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			j := NewJournal(Options{Capacity: 64, SampleRate: 0.5, Seed: 7, Now: fixedClock()})
			const perWorker = 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if i%10 == 0 {
							b := j.Begin(fmt.Sprintf("w%d-%d", w, i), "/evaluate")
							b.SetError("injected failure")
							b.Finish(500)
						} else {
							emitHealthy(j, fmt.Sprintf("w%d-%d", w, i))
						}
					}
				}(w)
			}
			wg.Wait()
			st := j.Stats()
			total := uint64(workers * perWorker)
			if st.Emitted != total {
				t.Fatalf("emitted %d, want %d", st.Emitted, total)
			}
			if st.Recorded+st.SampledOut != total {
				t.Fatalf("recorded %d + sampledOut %d != emitted %d", st.Recorded, st.SampledOut, total)
			}
			if st.Buffered > st.Capacity {
				t.Fatalf("buffered %d exceeds capacity %d", st.Buffered, st.Capacity)
			}
			for _, ev := range j.Events() {
				if ev.Route != "/evaluate" || (ev.Status != 200 && ev.Status != 500) {
					t.Fatalf("inconsistent retained event: %+v", ev)
				}
			}
		})
	}
}

// TestEvictionBound checks the ring overwrites oldest-first and never
// grows past capacity.
func TestEvictionBound(t *testing.T) {
	j := NewJournal(Options{Capacity: 8, SampleRate: 1, Now: fixedClock()})
	for i := 0; i < 50; i++ {
		emitHealthy(j, fmt.Sprintf("r%02d", i))
	}
	evs := j.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want capacity 8", len(evs))
	}
	// The survivors are exactly the last 8 commits, in order.
	for i, ev := range evs {
		if want := fmt.Sprintf("r%02d", 42+i); ev.RequestID != want {
			t.Fatalf("slot %d holds %q, want %q", i, ev.RequestID, want)
		}
	}
	if st := j.Stats(); st.Recorded != 50 || st.Buffered != 8 {
		t.Fatalf("stats = %+v, want recorded 50 buffered 8", st)
	}
}

// TestTailSamplingKeepsTail proves the retention bias: with a sample
// rate of zero, every error, degraded and slow event survives and
// every healthy event is sampled out.
func TestTailSamplingKeepsTail(t *testing.T) {
	j := NewJournal(Options{Capacity: 128, SampleRate: 0, SlowMs: 100, Seed: 1, Now: fixedClock()})
	const n = 30
	for i := 0; i < n; i++ {
		emitHealthy(j, fmt.Sprintf("healthy-%d", i)) // all sampled out

		b := j.Begin(fmt.Sprintf("err-%d", i), "/evaluate")
		b.SetError("boom")
		b.Finish(500)

		b = j.Begin(fmt.Sprintf("deg-%d", i), "/evaluate")
		b.SetDegraded([]string{"ess_ratio_below_floor"})
		b.Finish(200)

		b = j.Begin(fmt.Sprintf("bad-%d", i), "/ingest")
		b.Finish(422) // status >= 400 counts as error-class even with no message
	}
	evs := j.Events()
	if len(evs) != 3*n {
		t.Fatalf("retained %d events, want %d (every error/degraded/4xx)", len(evs), 3*n)
	}
	for _, ev := range evs {
		if ev.Error == "" && !ev.Degraded && ev.Status < 400 {
			t.Fatalf("healthy event leaked through zero sample rate: %+v", ev)
		}
	}
	if st := j.Stats(); st.SampledOut != n {
		t.Fatalf("sampledOut = %d, want %d healthy events", st.SampledOut, n)
	}
}

// TestSamplingDeterministic feeds two journals the identical sequence
// and requires identical retention decisions — the seeded-RNG
// property the byte-determinism acceptance criterion rests on.
func TestSamplingDeterministic(t *testing.T) {
	build := func() []string {
		j := NewJournal(Options{Capacity: 256, SampleRate: 0.3, Seed: 42, Now: fixedClock()})
		for i := 0; i < 200; i++ {
			emitHealthy(j, fmt.Sprintf("r%03d", i))
		}
		var ids []string
		for _, ev := range j.Events() {
			ids = append(ids, ev.RequestID)
		}
		return ids
	}
	a, b := build(), build()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("sample rate 0.3 retained %d of 200 — expected a strict subset", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical sequences retained different sets:\n%v\n%v", a, b)
	}
}

// TestSlowAlwaysKept checks the SlowMs criterion against a stepping
// clock (the only test that needs real-looking durations).
func TestSlowAlwaysKept(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var step time.Duration
	clock := func() time.Time { now = now.Add(step); return now }
	j := NewJournal(Options{Capacity: 16, SampleRate: 0, SlowMs: 50, Seed: 1, Now: clock})

	step = 0
	emitHealthy(j, "fast") // 0ms, sampled out

	step = 60 * time.Millisecond // one tick between Begin and Finish
	b := j.Begin("slow", "/evaluate")
	b.Finish(200)

	evs := j.Events()
	if len(evs) != 1 || evs[0].RequestID != "slow" {
		t.Fatalf("retained %v, want exactly the slow event", evs)
	}
	if evs[0].DurationMs < 50 {
		t.Fatalf("slow event duration %.1fms below the 50ms threshold that kept it", evs[0].DurationMs)
	}
}

// TestJSONLOrderAndFlush checks the sink exports retained events in
// commit order, one line each, and that SetSink(nil) flushes.
func TestJSONLOrderAndFlush(t *testing.T) {
	j := NewJournal(Options{Capacity: 32, SampleRate: 1, Now: fixedClock()})
	var mu sync.Mutex
	var buf bytes.Buffer
	j.SetSink(func(line []byte) {
		mu.Lock()
		defer mu.Unlock()
		buf.Write(line)
	})
	for i := 0; i < 10; i++ {
		emitHealthy(j, fmt.Sprintf("r%d", i))
	}
	j.SetSink(nil) // flush barrier

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 10 {
		t.Fatalf("sink wrote %d lines, want 10", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if want := fmt.Sprintf("r%d", i); ev.RequestID != want || ev.Seq != uint64(i) {
			t.Fatalf("line %d carries %q seq %d, want %q seq %d", i, ev.RequestID, ev.Seq, want, i)
		}
	}
}

// TestObserverSeesSampledOut checks observers receive the unsampled
// stream — the property the SLO engine depends on.
func TestObserverSeesSampledOut(t *testing.T) {
	j := NewJournal(Options{Capacity: 8, SampleRate: 0, Now: fixedClock()})
	var mu sync.Mutex
	seen := 0
	j.Observe(func(*Event) { mu.Lock(); seen++; mu.Unlock() })
	for i := 0; i < 20; i++ {
		emitHealthy(j, fmt.Sprintf("r%d", i))
	}
	if seen != 20 {
		t.Fatalf("observer saw %d events, want all 20 (sampling must not hide events from observers)", seen)
	}
	if st := j.Stats(); st.Recorded != 0 {
		t.Fatalf("recorded %d, want 0 at sample rate 0", st.Recorded)
	}
}

// TestNilSafety: a nil journal yields a nil builder whose whole
// surface is a no-op — the disabled-journal contract.
func TestNilSafety(t *testing.T) {
	var j *Journal
	b := j.Begin("id", "/evaluate")
	end := b.Phase("diagnose")
	end()
	b.Annotate("clip", "10")
	b.SetRegime(1, 1, 0)
	b.SetError("x")
	b.Finish(200)
	if got := j.Stats(); got != (Stats{}) {
		t.Fatalf("nil journal stats = %+v, want zero", got)
	}
	if j.Events() != nil || j.Capacity() != 0 {
		t.Fatal("nil journal must report no events and zero capacity")
	}
}

// TestFinishIdempotent: the one-event-per-request invariant — a
// second Finish is a no-op.
func TestFinishIdempotent(t *testing.T) {
	j := NewJournal(Options{Capacity: 8, SampleRate: 1, Now: fixedClock()})
	b := j.Begin("once", "/evaluate")
	b.Finish(200)
	b.Finish(500)
	if st := j.Stats(); st.Emitted != 1 {
		t.Fatalf("emitted %d events from one builder, want exactly 1", st.Emitted)
	}
	if evs := j.Events(); len(evs) != 1 || evs[0].Status != 200 {
		t.Fatalf("retained %v, want the first Finish only", evs)
	}
}

// TestFilterTable is the filter-language contract: each query against
// a fixed journal must select exactly the named requests.
func TestFilterTable(t *testing.T) {
	j := NewJournal(Options{Capacity: 32, SampleRate: 1, SlowMs: 0, Seed: 1, Now: fixedClock()})

	b := j.Begin("ok-1", "/evaluate")
	b.SetPolicy("best-observed")
	b.SetRegime(0.9, 1.5, 0)
	b.Finish(200)

	b = j.Begin("deg-1", "/evaluate")
	b.SetPolicy("constant:a")
	b.SetDegraded([]string{"ess_ratio_below_floor"})
	b.SetFallback("snips-clip")
	b.Finish(200)

	b = j.Begin("ing-1", "/ingest")
	b.SetWALAck(7, 400, "wal-000001.seg", true)
	b.Finish(200)

	b = j.Begin("err-1", "/evaluate")
	b.SetError("empty trace")
	b.Finish(422)

	// One synthetic slow event via a builder-free emit path: reuse a
	// stepping clock journal would complicate the table, so mark it
	// through Extra instead and filter on the annotation.
	b = j.Begin("ann-1", "/diagnose")
	b.Annotate("clip", "10")
	b.Finish(200)

	cases := []struct {
		name  string
		query string
		want  []string
	}{
		{"all", "", []string{"ok-1", "deg-1", "ing-1", "err-1", "ann-1"}},
		{"route", "route=/ingest", []string{"ing-1"}},
		{"degradedTrue", "degraded=true", []string{"deg-1"}},
		{"degradedFalse", "degraded=false", []string{"ok-1", "ing-1", "err-1", "ann-1"}},
		{"status", "status=422", []string{"err-1"}},
		{"policy", "policy=constant:a", []string{"deg-1"}},
		{"fallback", "fallbackEstimator=snips-clip", []string{"deg-1"}},
		{"requestId", "requestId=ok-1", []string{"ok-1"}},
		{"extraKey", "clip=10", []string{"ann-1"}},
		{"conjunction", "route=/evaluate&degraded=true", []string{"deg-1"}},
		{"walSegment", "walSegment=wal-000001.seg", []string{"ing-1"}},
		{"noMatch", "route=/nope", nil},
		{"limit", "limit=2", []string{"err-1", "ann-1"}},
		{"minLatency", "minLatencyMs=5", nil}, // fixed clock: every duration is 0
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			f, err := ParseFilter(q)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, ev := range j.Query(f) {
				got = append(got, ev.RequestID)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("query %q selected %v, want %v", tc.query, got, tc.want)
			}
		})
	}
}

// TestParseFilterErrors: malformed typed values are 400-class errors,
// not silent matches.
func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{"limit=0", "limit=x", "minLatencyMs=-1", "minLatencyMs=abc", "degraded=maybe"} {
		q, err := url.ParseQuery(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseFilter(q); err == nil {
			t.Fatalf("ParseFilter(%q) accepted a malformed value", bad)
		}
	}
	// limit above the cap clamps instead of erroring.
	q, _ := url.ParseQuery("limit=99999")
	f, err := ParseFilter(q)
	if err != nil || f.Limit != MaxQueryLimit {
		t.Fatalf("limit clamp: got (%v, %v), want limit %d", f.Limit, err, MaxQueryLimit)
	}
}

// TestHandler drives GET /debug/events end to end: shape, filters and
// the 400 path.
func TestHandler(t *testing.T) {
	j := NewJournal(Options{Capacity: 16, SampleRate: 1, Now: fixedClock()})
	emitHealthy(j, "a")
	b := j.Begin("b", "/evaluate")
	b.SetDegraded([]string{"max_weight_above_ceiling"})
	b.Finish(200)

	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	get := func(path string) (int, queryResponse) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body queryResponse
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, body
	}

	code, body := get("/?degraded=true")
	if code != 200 || len(body.Events) != 1 || body.Events[0].RequestID != "b" {
		t.Fatalf("degraded=true: code %d events %v", code, body.Events)
	}
	if body.Stats.Recorded != 2 {
		t.Fatalf("stats.recorded = %d, want 2", body.Stats.Recorded)
	}
	if code, _ := get("/?limit=bogus"); code != 400 {
		t.Fatalf("malformed limit answered %d, want 400", code)
	}
	// Empty result must serialize as [], not null.
	resp, err := srv.Client().Get(srv.URL + "/?route=/none")
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if _, err := sb.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Contains(sb.Bytes(), []byte(`"events":[]`)) {
		t.Fatalf("empty result body %q must carry \"events\":[]", sb.String())
	}
}

// TestConcurrentRecordAndSetSink races Finish (the Record/emit path)
// against repeated SetSink install/replace/remove cycles — the
// sinkMu-guarded swap contract the lockguard annotation on
// Journal.sink documents. Under -race this is the regression test for
// that contract: emitters read the sink pointer lock-free while
// SetSink serializes swaps and flushes the outgoing drainer, so no
// delivered line may be lost, duplicated, or written after the final
// SetSink(nil) returns.
func TestConcurrentRecordAndSetSink(t *testing.T) {
	j := NewJournal(Options{Capacity: 64, SampleRate: 1, Now: fixedClock()})

	var delivered atomic.Uint64
	var closed atomic.Bool
	sink := func(line []byte) {
		if closed.Load() {
			t.Error("sink write after final SetSink(nil) returned")
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			t.Errorf("malformed sink line %q", line)
		}
		delivered.Add(1)
	}

	const workers = 4
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				emitHealthy(j, fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	// Swap the sink concurrently with the emitters: install, replace,
	// remove, reinstall. Every cycle exercises the swap-flush path
	// while emit is loading the pointer lock-free.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			j.SetSink(sink)
			j.SetSink(sink)
			j.SetSink(nil)
		}
		j.SetSink(sink)
	}()
	wg.Wait()

	// Final removal flushes the last drainer; nothing may arrive after.
	j.SetSink(nil)
	closed.Store(true)

	st := j.Stats()
	if st.Emitted != workers*perWorker {
		t.Fatalf("emitted %d, want %d", st.Emitted, workers*perWorker)
	}
	if got := delivered.Load() + j.SinkDropped(); got > uint64(workers*perWorker) {
		t.Fatalf("delivered %d + dropped %d exceeds emitted %d", delivered.Load(), j.SinkDropped(), workers*perWorker)
	}
}
