package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServerLatencyMonotone(t *testing.T) {
	s := &Server{Name: "a", Capacity: 100, BaseLatency: 10}
	if got := s.Latency(0); got != 10 {
		t.Fatalf("zero-load latency = %g, want 10", got)
	}
	prev := 0.0
	for load := 0.0; load <= 200; load += 10 {
		l := s.Latency(load)
		if l < prev {
			t.Fatalf("latency not monotone at load %g: %g < %g", load, l, prev)
		}
		prev = l
	}
	// Saturation cap keeps latency finite.
	if l := s.Latency(1e9); math.IsInf(l, 0) || l > 10/(1-0.97)+1e-9 {
		t.Fatalf("overload latency = %g", l)
	}
	// Negative load clamps to base.
	if got := s.Latency(-5); got != 10 {
		t.Fatalf("negative load latency = %g", got)
	}
}

func TestServerLatencyHalfCapacity(t *testing.T) {
	s := &Server{Name: "a", Capacity: 10, BaseLatency: 20}
	if got := s.Latency(5); !almostEqual(got, 40, 1e-9) {
		t.Fatalf("latency at 50%% = %g, want 40 (M/M/1)", got)
	}
}

func TestServerPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := &Server{Name: "bad", Capacity: 0, BaseLatency: 1}
	s.Latency(1)
}

func TestQoE(t *testing.T) {
	if got := QoE(0, 100); got != 1 {
		t.Fatalf("QoE(0) = %g", got)
	}
	if got := QoE(100, 100); got != 0.5 {
		t.Fatalf("QoE at half-life = %g, want 0.5", got)
	}
	if QoE(1000, 100) >= QoE(10, 100) {
		t.Fatal("QoE should decrease with latency")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad half-life")
		}
	}()
	QoE(1, 0)
}

func TestDiurnalProfile(t *testing.T) {
	p := DiurnalProfile{Low: 10, High: 90, PeakHour: 20}
	if got := p.Load(20); !almostEqual(got, 90, 1e-9) {
		t.Fatalf("peak load = %g, want 90", got)
	}
	if got := p.Load(8); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("trough load = %g, want 10", got)
	}
	// Wraps around midnight smoothly.
	if !almostEqual(p.Load(0), p.Load(24), 1e-9) {
		t.Fatal("profile not periodic")
	}
	// Default peak hour.
	d := DiurnalProfile{Low: 0, High: 1}
	if got := d.Load(20); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("default peak = %g", got)
	}
}

// Property: diurnal load is always within [Low, High].
func TestDiurnalBoundsProperty(t *testing.T) {
	f := func(hour float64) bool {
		p := DiurnalProfile{Low: 5, High: 50, PeakHour: 13}
		l := p.Load(math.Mod(math.Abs(hour), 24))
		return l >= 5-1e-9 && l <= 50+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTrackerLifecycle(t *testing.T) {
	lt, err := NewLoadTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoadTracker(0); err == nil {
		t.Fatal("holdTicks 0 should fail")
	}
	lt.Assign("a")
	lt.Assign("a")
	lt.Assign("b")
	if lt.Load("a") != 2 || lt.Load("b") != 1 || lt.Load("c") != 0 {
		t.Fatalf("loads a=%g b=%g c=%g", lt.Load("a"), lt.Load("b"), lt.Load("c"))
	}
	lt.Tick()
	lt.Tick()
	if lt.Load("a") != 2 {
		t.Fatal("sessions expired too early")
	}
	lt.Tick()
	if lt.Load("a") != 0 || lt.Load("b") != 0 {
		t.Fatalf("sessions should have expired: a=%g b=%g", lt.Load("a"), lt.Load("b"))
	}
	if lt.Now() != 3 {
		t.Fatalf("Now = %d", lt.Now())
	}
}

func TestLoadTrackerStaggered(t *testing.T) {
	lt, _ := NewLoadTracker(2)
	lt.Assign("s")
	lt.Tick()
	lt.Assign("s")
	if lt.Load("s") != 2 {
		t.Fatalf("load = %g, want 2", lt.Load("s"))
	}
	lt.Tick()
	if lt.Load("s") != 1 {
		t.Fatalf("load = %g, want 1 (first expired)", lt.Load("s"))
	}
	lt.Tick()
	if lt.Load("s") != 0 {
		t.Fatalf("load = %g, want 0", lt.Load("s"))
	}
}

func TestCouplingThroughServerAndTracker(t *testing.T) {
	// Assignments degrade subsequent latency: the §4.1 coupling.
	s := &Server{Name: "s", Capacity: 10, BaseLatency: 10}
	lt, _ := NewLoadTracker(5)
	before := s.Latency(lt.Load("s"))
	for i := 0; i < 8; i++ {
		lt.Assign("s")
	}
	after := s.Latency(lt.Load("s"))
	if after <= before*2 {
		t.Fatalf("8 assignments should sharply degrade latency: %g -> %g", before, after)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
