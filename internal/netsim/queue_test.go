package netsim

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestSimulateQueueMatchesMM1Theory(t *testing.T) {
	rng := mathx.NewRNG(1)
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		mu := 1.0
		lambda := rho * mu
		stats, err := SimulateQueue(QueueConfig{
			Lambda: lambda, Mu: mu, Jobs: 200000,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := MM1Sojourn(lambda, mu)
		if rel := math.Abs(stats.MeanSojourn-want) / want; rel > 0.05 {
			t.Fatalf("rho=%.1f: mean sojourn %g, theory %g (rel err %g)",
				rho, stats.MeanSojourn, want, rel)
		}
		// Little's-law style sanity: utilization ≈ rho.
		if math.Abs(stats.Utilization-rho) > 0.03 {
			t.Fatalf("rho=%.1f: measured utilization %g", rho, stats.Utilization)
		}
		// Wait + service = sojourn: mean wait ≈ sojourn − 1/µ.
		if math.Abs(stats.MeanWait-(stats.MeanSojourn-1/mu)) > 0.05*want {
			t.Fatalf("rho=%.1f: wait %g inconsistent with sojourn %g", rho, stats.MeanWait, stats.MeanSojourn)
		}
	}
}

func TestSimulateQueueMultiServer(t *testing.T) {
	// M/M/2 with the same total capacity waits LESS than M/M/1 at equal
	// utilization (resource pooling).
	rng := mathx.NewRNG(2)
	single, err := SimulateQueue(QueueConfig{Lambda: 0.8, Mu: 1, Servers: 1, Jobs: 100000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	double, err := SimulateQueue(QueueConfig{Lambda: 1.6, Mu: 1, Servers: 2, Jobs: 100000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if double.MeanWait >= single.MeanWait {
		t.Fatalf("M/M/2 wait %g should beat M/M/1 wait %g at equal utilization",
			double.MeanWait, single.MeanWait)
	}
}

func TestSimulateQueueValidation(t *testing.T) {
	rng := mathx.NewRNG(3)
	cases := []QueueConfig{
		{Lambda: 0, Mu: 1, Jobs: 10},
		{Lambda: 1, Mu: 0, Jobs: 10},
		{Lambda: 1, Mu: 1, Jobs: 10},            // unstable
		{Lambda: 2, Mu: 1, Servers: 1, Jobs: 5}, // unstable
		{Lambda: 0.5, Mu: 1, Jobs: 0},
	}
	for i, cfg := range cases {
		if _, err := SimulateQueue(cfg, rng); err == nil {
			t.Fatalf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestSimulateQueueP95AboveMean(t *testing.T) {
	rng := mathx.NewRNG(4)
	stats, err := SimulateQueue(QueueConfig{Lambda: 0.7, Mu: 1, Jobs: 50000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.P95Sojourn <= stats.MeanSojourn {
		t.Fatalf("p95 %g should exceed the mean %g for an exponential-ish tail",
			stats.P95Sojourn, stats.MeanSojourn)
	}
	if stats.Completed <= 0 {
		t.Fatal("no completed jobs measured")
	}
}

func TestServerLatencyMatchesQueueTheoryShape(t *testing.T) {
	// Server.Latency(load) = BaseLatency/(1-util) is the M/M/1 sojourn
	// formula with BaseLatency = 1/µ. Verify agreement against the
	// discrete-event simulation at a moderate load.
	rng := mathx.NewRNG(5)
	mu := 1.0
	lambda := 0.6
	stats, err := SimulateQueue(QueueConfig{Lambda: lambda, Mu: mu, Jobs: 150000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{Name: "q", Capacity: 1, BaseLatency: 1 / mu}
	closed := s.Latency(lambda / mu) // utilization as "load/capacity"
	if rel := math.Abs(stats.MeanSojourn-closed) / closed; rel > 0.05 {
		t.Fatalf("closed-form %g vs simulated %g (rel err %g)", closed, stats.MeanSojourn, rel)
	}
}

func TestMM1SojournUnstable(t *testing.T) {
	if !math.IsInf(MM1Sojourn(2, 1), 1) {
		t.Fatal("unstable queue should have infinite sojourn")
	}
}
