package netsim

import (
	"container/heap"
	"errors"
	"math"

	"drnet/internal/mathx"
)

// QueueConfig parameterizes a discrete-event M/M/c queue simulation:
// Poisson arrivals at rate Lambda, c identical servers each with
// exponential service at rate Mu, FIFO discipline, infinite buffer.
//
// This is the first-principles model behind Server's closed-form
// load–latency curve: an M/M/1 sojourn time is 1/(µ−λ) =
// (1/µ)/(1−ρ), i.e. BaseLatency/(1−utilization), which is exactly
// Server.Latency. The simulator exists to validate that shortcut and to
// generate realistic latency *distributions* (not just means) when an
// experiment needs them.
type QueueConfig struct {
	// Lambda is the arrival rate (jobs per unit time).
	Lambda float64
	// Mu is the per-server service rate.
	Mu float64
	// Servers is the number of parallel servers c (default 1).
	Servers int
	// Jobs is how many arrivals to simulate.
	Jobs int
	// WarmupJobs are discarded from statistics (default Jobs/10).
	WarmupJobs int
}

// QueueStats summarizes a queue simulation.
type QueueStats struct {
	// MeanSojourn is the average time a job spends in the system
	// (waiting + service).
	MeanSojourn float64
	// MeanWait is the average queueing delay before service.
	MeanWait float64
	// P95Sojourn is the 95th percentile sojourn time.
	P95Sojourn float64
	// Utilization is the measured fraction of server capacity busy.
	Utilization float64
	// Completed is the number of jobs measured.
	Completed int
}

// event is an entry in the simulator's future-event list.
type event struct {
	at   float64
	kind int // 0 arrival, 1 departure
	job  int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// SimulateQueue runs the discrete-event simulation and returns sojourn
// statistics. The system must be stable: Lambda < Servers·Mu.
func SimulateQueue(cfg QueueConfig, rng *mathx.RNG) (QueueStats, error) {
	if cfg.Lambda <= 0 || cfg.Mu <= 0 {
		return QueueStats{}, errors.New("netsim: rates must be positive")
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Jobs <= 0 {
		return QueueStats{}, errors.New("netsim: need at least one job")
	}
	if cfg.Lambda >= float64(cfg.Servers)*cfg.Mu {
		return QueueStats{}, errors.New("netsim: unstable queue (lambda >= c*mu)")
	}
	warmup := cfg.WarmupJobs
	if warmup <= 0 {
		warmup = cfg.Jobs / 10
	}

	arrivalTime := make([]float64, cfg.Jobs)
	serviceStart := make([]float64, cfg.Jobs)
	departTime := make([]float64, cfg.Jobs)

	var fel eventHeap
	t := 0.0
	for j := 0; j < cfg.Jobs; j++ {
		t += rng.Exponential(cfg.Lambda)
		arrivalTime[j] = t
		heap.Push(&fel, event{at: t, kind: 0, job: j})
	}

	busy := 0
	var queue []int
	busyTime := 0.0
	lastT := 0.0
	now := 0.0
	startJob := func(j int) {
		serviceStart[j] = now
		d := now + rng.Exponential(cfg.Mu)
		departTime[j] = d
		heap.Push(&fel, event{at: d, kind: 1, job: j})
	}
	for fel.Len() > 0 {
		e := heap.Pop(&fel).(event)
		now = e.at
		busyTime += float64(busy) * (now - lastT)
		lastT = now
		switch e.kind {
		case 0:
			if busy < cfg.Servers {
				busy++
				startJob(e.job)
			} else {
				queue = append(queue, e.job)
			}
		case 1:
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				startJob(next)
			} else {
				busy--
			}
		}
	}

	var sojourns, waits []float64
	for j := warmup; j < cfg.Jobs; j++ {
		sojourns = append(sojourns, departTime[j]-arrivalTime[j])
		waits = append(waits, serviceStart[j]-arrivalTime[j])
	}
	if len(sojourns) == 0 {
		return QueueStats{}, errors.New("netsim: warmup discarded every job")
	}
	return QueueStats{
		MeanSojourn: mathx.Mean(sojourns),
		MeanWait:    mathx.Mean(waits),
		P95Sojourn:  mathx.Quantile(sojourns, 0.95),
		Utilization: busyTime / (now * float64(cfg.Servers)),
		Completed:   len(sojourns),
	}, nil
}

// MM1Sojourn returns the analytic mean sojourn time of an M/M/1 queue:
// 1/(µ−λ).
func MM1Sojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}
