// Package netsim is the shared network substrate behind the world-state
// and decision–reward-coupling experiments (§4.1, §4.3): servers whose
// latency degrades convexly with load, diurnal background-load profiles,
// and a session-based load tracker that lets a policy's own assignments
// feed back into future rewards ("self-induced" congestion).
package netsim

import (
	"errors"
	"fmt"
	"math"
)

// Server models one service instance with a convex load–latency curve.
// Latency follows an M/M/1-style curve: BaseLatency / (1 - utilization),
// capped so overload stays finite.
type Server struct {
	// Name identifies the server.
	Name string
	// Capacity is the load (concurrent sessions, arbitrary units) at
	// which the server saturates.
	Capacity float64
	// BaseLatency is the response latency in milliseconds at zero load.
	BaseLatency float64
}

// maxUtilization caps the effective utilization so latency remains
// finite under overload.
const maxUtilization = 0.97

// Latency returns the response latency (ms) at the given total load.
func (s *Server) Latency(load float64) float64 {
	if s.Capacity <= 0 {
		panic(fmt.Sprintf("netsim: server %q has non-positive capacity", s.Name))
	}
	util := load / s.Capacity
	if util < 0 {
		util = 0
	}
	if util > maxUtilization {
		util = maxUtilization
	}
	return s.BaseLatency / (1 - util)
}

// QoE maps a latency (ms) to a quality-of-experience reward in (0, 1]:
// 1 at zero latency, 0.5 at the half-life latency.
func QoE(latencyMs, halfLifeMs float64) float64 {
	if halfLifeMs <= 0 {
		panic("netsim: non-positive half-life")
	}
	return 1 / (1 + latencyMs/halfLifeMs)
}

// DiurnalProfile is a smooth time-of-day background-load pattern with a
// trough in the early morning and a peak in the evening — the paper's
// "trace collected during early morning hours" vs "peak hours" example.
type DiurnalProfile struct {
	// Low is the background load at the quietest hour.
	Low float64
	// High is the background load at the busiest hour.
	High float64
	// PeakHour is the hour of day (0–24) of maximum load (default 20).
	PeakHour float64
}

// Load returns the background load at the given hour of day (fractional
// hours accepted; values wrap modulo 24).
func (p DiurnalProfile) Load(hour float64) float64 {
	peak := p.PeakHour
	if peak == 0 {
		peak = 20
	}
	phase := 2 * math.Pi * (hour - peak) / 24
	// cos(phase)=1 at the peak hour, -1 twelve hours away.
	frac := (math.Cos(phase) + 1) / 2
	return p.Low + (p.High-p.Low)*frac
}

// LoadTracker accounts for the load that prior assignments induce on
// each server. Each assignment contributes one unit of load for
// HoldTicks ticks of virtual time — so a burst of assignments to one
// server degrades that server for a while, which is exactly the
// decision–reward coupling of §4.1.
type LoadTracker struct {
	holdTicks int
	now       int
	// expiry[server] holds a ring of pending expiry times.
	active map[string][]int
}

// NewLoadTracker creates a tracker where each assignment lasts holdTicks
// ticks (≥ 1).
func NewLoadTracker(holdTicks int) (*LoadTracker, error) {
	if holdTicks < 1 {
		return nil, errors.New("netsim: holdTicks must be >= 1")
	}
	return &LoadTracker{holdTicks: holdTicks, active: make(map[string][]int)}, nil
}

// Assign records one session assigned to the server at the current tick.
func (lt *LoadTracker) Assign(server string) {
	lt.active[server] = append(lt.active[server], lt.now+lt.holdTicks)
}

// Tick advances virtual time by one step, expiring old sessions.
func (lt *LoadTracker) Tick() {
	lt.now++
	for s, expiries := range lt.active {
		kept := expiries[:0]
		for _, e := range expiries {
			if e > lt.now {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(lt.active, s)
		} else {
			lt.active[s] = kept
		}
	}
}

// Load returns the induced load currently active on the server.
func (lt *LoadTracker) Load(server string) float64 {
	return float64(len(lt.active[server]))
}

// Now returns the current tick.
func (lt *LoadTracker) Now() int { return lt.now }
