package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(2, 0)
	rel1, waited, err := l.Acquire(context.Background())
	if err != nil || waited != 0 {
		t.Fatalf("first acquire: waited %v, err %v", waited, err)
	}
	rel2, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// Both slots held, queue empty → immediate shed.
	if _, _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire: %v, want ErrSaturated", err)
	}
	rel1()
	rel2()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestLimiterQueueAdmitsWhenSlotFrees(t *testing.T) {
	l := NewLimiter(1, 1)
	rel, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, waited, err := l.Acquire(context.Background())
		if err == nil {
			if waited <= 0 {
				err = errors.New("queued acquire reported zero wait")
			}
			rel2()
		}
		got <- err
	}()
	// Give the goroutine time to enter the queue, then free the slot.
	for i := 0; i < 100 && l.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if l.Queued() != 1 {
		t.Fatal("acquirer never queued")
	}
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never admitted")
	}
}

func TestLimiterShedsBeyondQueue(t *testing.T) {
	l := NewLimiter(1, 1)
	rel, _, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		_, _, err := l.Acquire(ctx)
		queued <- err
	}()
	for i := 0; i < 100 && l.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Slot held, queue full → the next acquire sheds immediately.
	if _, _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	// The queued acquirer leaves with ctx.Err when its context ends.
	cancel()
	select {
	case err := <-queued:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued acquire: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never returned after cancel")
	}
	if l.Queued() != 0 {
		t.Fatalf("Queued = %d after cancel, want 0", l.Queued())
	}
}

// TestLimiterConcurrencyCap hammers the limiter from many goroutines
// and asserts the number of simultaneous holders never exceeds the cap.
func TestLimiterConcurrencyCap(t *testing.T) {
	const cap, clients = 4, 32
	l := NewLimiter(cap, clients)
	var inside, peak, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := l.Acquire(context.Background())
			if err != nil {
				shed.Add(1)
				return
			}
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inside.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if peak.Load() > cap {
		t.Fatalf("peak concurrency %d exceeds cap %d", peak.Load(), cap)
	}
	if shed.Load() > 0 {
		t.Fatalf("%d acquires shed with queue sized for all clients", shed.Load())
	}
}
