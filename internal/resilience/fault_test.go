package resilience

import (
	"errors"
	"testing"
	"time"
)

// outcomes replays n hits at a point and records each one: "ok", "err"
// or "panic".
func outcomes(point string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = func() (res string) {
			defer func() {
				if recover() != nil {
					res = "panic"
				}
			}()
			if err := Inject(point); err != nil {
				return "err"
			}
			return "ok"
		}()
	}
	return out
}

func TestInjectNoopWithoutPlan(t *testing.T) {
	Deactivate()
	for i := 0; i < 100; i++ {
		if err := Inject(PointPoolTask); err != nil {
			t.Fatalf("hit %d: %v with no active plan", i, err)
		}
	}
}

func TestInjectUnknownPointIsNoop(t *testing.T) {
	Activate(NewFaultPlan(1).Add(PointTraceRead, FaultSpec{ErrProb: 1}))
	defer Deactivate()
	if err := Inject("some.other.point"); err != nil {
		t.Fatalf("unknown point injected: %v", err)
	}
}

// TestFaultPlanDeterministic: two plans with the same seed and spec
// produce the identical outcome sequence, and a different seed produces
// a different one (for this spec and length).
func TestFaultPlanDeterministic(t *testing.T) {
	spec := FaultSpec{ErrProb: 0.3, PanicProb: 0.1}
	const n = 200
	run := func(seed int64) []string {
		Activate(NewFaultPlan(seed).Add(PointPoolTask, spec))
		defer Deactivate()
		return outcomes(PointPoolTask, n)
	}
	a, b, c := run(42), run(42), run(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: %q vs %q under the same seed", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-hit sequences")
	}
	counts := map[string]int{}
	for _, o := range a {
		counts[o]++
	}
	// With 200 hits at 30%/10% the counts should be in the right regime.
	if counts["err"] < 30 || counts["err"] > 90 {
		t.Fatalf("err count %d implausible for p=0.3", counts["err"])
	}
	if counts["panic"] < 5 || counts["panic"] > 40 {
		t.Fatalf("panic count %d implausible for p=0.1", counts["panic"])
	}
}

func TestInjectedErrorIsSentinel(t *testing.T) {
	Activate(NewFaultPlan(7).Add(PointTraceRead, FaultSpec{ErrProb: 1}))
	defer Deactivate()
	err := Inject(PointTraceRead)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

func TestFaultPlanCounters(t *testing.T) {
	p := NewFaultPlan(3).Add(PointPoolTask, FaultSpec{ErrProb: 1})
	Activate(p)
	defer Deactivate()
	for i := 0; i < 10; i++ {
		_ = Inject(PointPoolTask)
	}
	if p.Hits(PointPoolTask) != 10 || p.Fired(PointPoolTask) != 10 {
		t.Fatalf("hits=%d fired=%d, want 10/10", p.Hits(PointPoolTask), p.Fired(PointPoolTask))
	}
	if p.Hits("unknown") != 0 || p.Fired("unknown") != 0 {
		t.Fatal("unknown point reported nonzero counters")
	}
}

// TestLatencyDrawIndependent: enabling latency must not change which
// hits error — the latency draw uses its own stream.
func TestLatencyDrawIndependent(t *testing.T) {
	spec := FaultSpec{ErrProb: 0.4}
	withLatency := spec
	withLatency.LatencyProb = 1
	withLatency.Latency = time.Microsecond
	const n = 100
	Activate(NewFaultPlan(9).Add(PointTraceRead, spec))
	plain := outcomes(PointTraceRead, n)
	Activate(NewFaultPlan(9).Add(PointTraceRead, withLatency))
	delayed := outcomes(PointTraceRead, n)
	Deactivate()
	for i := range plain {
		if plain[i] != delayed[i] {
			t.Fatalf("hit %d: latency changed outcome %q → %q", i, plain[i], delayed[i])
		}
	}
}
