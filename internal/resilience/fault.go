package resilience

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Canonical injection point names. Points are plain strings so layers
// can add their own (drevald uses "http.<route>"), but the shared ones
// live here to keep callers and fault plans in sync.
const (
	// PointTraceRead fires in the traceio CSV/JSONL readers.
	PointTraceRead = "traceio.read"
	// PointPoolTask fires at the start of every worker-pool task.
	PointPoolTask = "parallel.task"
	// PointWALAppend fires before a WAL frame is written; an injected
	// error fails the append cleanly (nothing reaches the file).
	PointWALAppend = "walog.append"
	// PointWALWrite fires mid-frame: an injected error makes the WAL
	// writer perform a deliberately SHORT write (a torn frame on disk)
	// before surfacing the error, so recovery's torn-tail truncation is
	// exercised against realistic partial writes.
	PointWALWrite = "walog.write"
	// PointWALSync fires in place of fsync; an injected error is
	// reported as a sync failure (the data may or may not be durable,
	// exactly like a real fsync error).
	PointWALSync = "walog.sync"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// tests and callers can distinguish deliberate chaos from real
// failures with errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// FaultSpec describes what can happen at one injection point. The
// probabilities are evaluated per hit in order panic, error; latency is
// an independent draw that applies before either. All zero means the
// point never fires.
type FaultSpec struct {
	// ErrProb is the probability a hit returns an injected error.
	ErrProb float64
	// PanicProb is the probability a hit panics.
	PanicProb float64
	// LatencyProb is the probability a hit sleeps for Latency first.
	LatencyProb float64
	// Latency is the injected delay.
	Latency time.Duration
}

type pointState struct {
	spec  FaultSpec
	hash  uint64
	hits  atomic.Uint64
	fired atomic.Uint64
}

// FaultPlan is a deterministic, seed-driven set of fault specs keyed by
// injection point. The outcome of the n-th hit at a point is a pure
// function of (seed, point, n): the hit index comes from a per-point
// atomic counter and the decision from a SplitMix64 hash, never from a
// shared RNG. Under concurrency the assignment of hit indices to
// callers can interleave, but the multiset of outcomes is fixed, which
// is what makes chaos runs reproducible.
//
// Build a plan with NewFaultPlan and Add, then install it with
// Activate. Plans are immutable once activated.
type FaultPlan struct {
	seed   uint64
	points map[string]*pointState
}

// NewFaultPlan returns an empty plan rooted at seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: uint64(seed), points: map[string]*pointState{}}
}

// Add registers a spec for an injection point and returns the plan for
// chaining. It must not be called after Activate.
func (p *FaultPlan) Add(point string, spec FaultSpec) *FaultPlan {
	p.points[point] = &pointState{spec: spec, hash: hashString(point)}
	return p
}

// Hits reports how many times a point has been reached under this plan.
func (p *FaultPlan) Hits(point string) uint64 {
	if st, ok := p.points[point]; ok {
		return st.hits.Load()
	}
	return 0
}

// Fired reports how many hits at a point injected an error or panic.
func (p *FaultPlan) Fired(point string) uint64 {
	if st, ok := p.points[point]; ok {
		return st.fired.Load()
	}
	return 0
}

// active is the process-wide plan; nil (the default) makes every
// Inject call a single atomic load and nothing else.
var active atomic.Pointer[FaultPlan]

// Activate installs a plan process-wide. Passing nil disables
// injection, as does Deactivate.
func Activate(p *FaultPlan) { active.Store(p) }

// Deactivate removes the active plan; every Inject becomes a no-op.
func Deactivate() { active.Store(nil) }

// Inject is the instrumentation hook: call it at a named point and
// propagate the returned error. With no active plan it returns nil
// immediately. With a plan it may sleep, return an ErrInjected-wrapped
// error, or panic, per the point's FaultSpec.
func Inject(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(point)
}

func (p *FaultPlan) hit(point string) error {
	st, ok := p.points[point]
	if !ok {
		return nil
	}
	n := st.hits.Add(1) - 1
	if st.spec.LatencyProb > 0 && unit(p.seed^st.hash^latencySalt, n) < st.spec.LatencyProb {
		time.Sleep(st.spec.Latency)
	}
	u := unit(p.seed^st.hash, n)
	switch {
	case u < st.spec.PanicProb:
		st.fired.Add(1)
		panic(fmt.Sprintf("resilience: injected panic at %s (hit %d)", point, n))
	case u < st.spec.PanicProb+st.spec.ErrProb:
		st.fired.Add(1)
		return fmt.Errorf("%s hit %d: %w", point, n, ErrInjected)
	}
	return nil
}

// latencySalt separates the latency draw's stream from the outcome
// draw's, so enabling latency never changes which hits error or panic.
const latencySalt = 0xD1FA11CE

// unit maps (stream, n) to a uniform value in [0, 1).
func unit(stream, n uint64) float64 {
	return float64(splitmix64(stream+n*0x9E3779B97F4A7C15)>>11) / (1 << 53)
}

// hashString is FNV-1a, inlined to keep the package stdlib-only and
// the point hash stable across runs.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer, the same mix the parallel
// package uses to derive RNG shards: a bijection that scatters
// consecutive inputs across the full 64-bit space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
