package resilience

import (
	"context"
	"errors"
	"time"
)

// ErrSaturated is returned by Acquire when both the concurrency slots
// and the wait queue are full. Callers translate it into backpressure
// (HTTP 429 + Retry-After in drevald).
var ErrSaturated = errors.New("resilience: limiter saturated")

// Limiter is admission control for a shared resource: at most
// maxConcurrent holders run at once, and at most maxQueue more may wait
// for a slot. Anything beyond that is shed immediately with
// ErrSaturated — bounded queueing is the point; an unbounded queue just
// converts overload into latency and memory growth.
//
// A Limiter is safe for concurrent use and must not be copied.
type Limiter struct {
	sem   chan struct{}
	queue chan struct{}
}

// NewLimiter returns a limiter admitting maxConcurrent concurrent
// holders (minimum 1) with a wait queue of maxQueue (minimum 0).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		sem:   make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
	}
}

// Acquire obtains a concurrency slot, waiting in the bounded queue if
// none is free. It returns a release function that must be called
// exactly once when the work finishes, the time spent queued (zero on
// the fast path), and an error: ErrSaturated when the queue is full, or
// ctx.Err() when the caller's context ends while waiting.
func (l *Limiter) Acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	select {
	case l.sem <- struct{}{}:
		return l.release, 0, nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, 0, ErrSaturated
	}
	start := time.Now()
	select {
	case l.sem <- struct{}{}:
		<-l.queue
		return l.release, time.Since(start), nil
	case <-ctx.Done():
		<-l.queue
		return nil, time.Since(start), ctx.Err()
	}
}

func (l *Limiter) release() { <-l.sem }

// InFlight reports how many slots are currently held.
func (l *Limiter) InFlight() int { return len(l.sem) }

// Queued reports how many acquirers are currently waiting.
func (l *Limiter) Queued() int { return len(l.queue) }

// Capacity reports the concurrency cap.
func (l *Limiter) Capacity() int { return cap(l.sem) }

// QueueCapacity reports the wait-queue bound.
func (l *Limiter) QueueCapacity() int { return cap(l.queue) }
