package resilience

import "fmt"

// Degradation reason codes, machine-readable so clients can branch on
// them without parsing prose.
const (
	ReasonESSRatio    = "ess_ratio_below_floor"
	ReasonMaxWeight   = "max_weight_above_ceiling"
	ReasonZeroSupport = "zero_support_above_cap"
	ReasonTraceDrift  = "trace_drift"
	ReasonStaleAggs   = "stale_aggregates"
	ReasonSLOBurn     = "slo_burn"
)

// Reason is one triggered degradation threshold: what was observed,
// what the limit was, and a human-readable detail line. All fields are
// pure functions of the diagnostics, so responses carrying Reasons stay
// bit-deterministic.
type Reason struct {
	Code      string  `json:"code"`
	Observed  float64 `json:"observed"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail"`
}

// Thresholds configure when an off-policy estimate must be flagged
// degraded — the paper's §4.1 regimes (collapsing effective sample
// size, exploding weight tails, vanishing support) made into explicit
// service policy. A zero value disables the corresponding check.
type Thresholds struct {
	// ESSRatioFloor flags the estimate when ESS/N falls below it:
	// a few heavily-weighted records dominate the average.
	ESSRatioFloor float64
	// MaxWeightCeiling flags the estimate when any importance weight
	// exceeds it: one record can move the estimate by weight/n.
	MaxWeightCeiling float64
	// ZeroSupportCap flags the estimate when the fraction of records
	// with zero probability under the new policy exceeds it: those
	// records contribute nothing to IPS/DR corrections.
	ZeroSupportCap float64
}

// DefaultThresholds are conservative serving defaults: degrade when
// fewer than 10% of the records carry the estimate, when a single
// weight tops 100, or when over half the trace has no support.
func DefaultThresholds() Thresholds {
	return Thresholds{ESSRatioFloor: 0.1, MaxWeightCeiling: 100, ZeroSupportCap: 0.5}
}

// DriftReason builds the degradation reason for a fired windowed-drift
// alarm: the bias observatory saw the trace's reward or ESS series
// leave its calibrated regime, so whole-trace estimates mix records
// from different regimes. Observed is the alarm count; Threshold the
// CUSUM decision threshold (in σ units) the series crossed.
func DriftReason(alarms int, threshold float64) Reason {
	return Reason{
		Code: ReasonTraceDrift, Observed: float64(alarms), Threshold: threshold,
		Detail: fmt.Sprintf("%d drift alarm(s) fired on the trace's windowed reward/ESS series (CUSUM h=%g): the trace spans more than one regime", alarms, threshold),
	}
}

// StaleAggregatesReason builds the degradation reason for a streaming
// evaluation served from running aggregates whose frozen reward model
// has fallen too far behind the ingested trace: ageRecords records
// arrived since the model was fit, above the configured limit, so the
// DM/DR components may no longer reflect the live reward surface (the
// paper's core drift warning applied to the serving path itself).
func StaleAggregatesReason(ageRecords, limit uint64) Reason {
	return Reason{
		Code: ReasonStaleAggs, Observed: float64(ageRecords), Threshold: float64(limit),
		Detail: fmt.Sprintf("%d records ingested since the policy's reward model was frozen, above the %d-record staleness limit; re-register the policy to refit", ageRecords, limit),
	}
}

// SLOBurnReason builds the degradation reason for an error budget
// burning at page severity: the named objective's short and long
// windows both exceeded the burn threshold, so the service escalates
// from per-request diagnostics to fleet-level health — new estimates
// are tagged degraded until the burn clears. Observed is the short
// window's burn rate; Threshold the window's firing threshold.
func SLOBurnReason(objective string, burn, threshold float64) Reason {
	return Reason{
		Code: ReasonSLOBurn, Observed: burn, Threshold: threshold,
		Detail: fmt.Sprintf("SLO %q is burning error budget at %.1fx the sustainable rate (page threshold %gx): treat estimates as degraded until the burn clears", objective, burn, threshold),
	}
}

// Check evaluates the thresholds against one request's diagnostics and
// returns the triggered reasons, nil when the estimate is healthy.
func (t Thresholds) Check(n int, ess, maxWeight float64, zeroSupport int) []Reason {
	if n <= 0 {
		return nil
	}
	var out []Reason
	if ratio := ess / float64(n); t.ESSRatioFloor > 0 && ratio < t.ESSRatioFloor {
		out = append(out, Reason{
			Code: ReasonESSRatio, Observed: ratio, Threshold: t.ESSRatioFloor,
			Detail: fmt.Sprintf("effective sample size %.1f is %.4f of n=%d, below the %g floor", ess, ratio, n, t.ESSRatioFloor),
		})
	}
	if t.MaxWeightCeiling > 0 && maxWeight > t.MaxWeightCeiling {
		out = append(out, Reason{
			Code: ReasonMaxWeight, Observed: maxWeight, Threshold: t.MaxWeightCeiling,
			Detail: fmt.Sprintf("largest importance weight %.4g exceeds the %g ceiling", maxWeight, t.MaxWeightCeiling),
		})
	}
	if frac := float64(zeroSupport) / float64(n); t.ZeroSupportCap > 0 && frac > t.ZeroSupportCap {
		out = append(out, Reason{
			Code: ReasonZeroSupport, Observed: frac, Threshold: t.ZeroSupportCap,
			Detail: fmt.Sprintf("%d of %d records (%.4f) have zero support under the new policy, above the %g cap", zeroSupport, n, frac, t.ZeroSupportCap),
		})
	}
	return out
}
