package resilience

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func codes(rs []Reason) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Code
	}
	return out
}

func TestCheckHealthy(t *testing.T) {
	th := DefaultThresholds()
	if rs := th.Check(1000, 500, 3, 10); rs != nil {
		t.Fatalf("healthy diagnostics degraded: %+v", rs)
	}
}

func TestCheckEachThreshold(t *testing.T) {
	th := Thresholds{ESSRatioFloor: 0.1, MaxWeightCeiling: 100, ZeroSupportCap: 0.5}
	cases := []struct {
		name        string
		n           int
		ess, maxW   float64
		zeroSupport int
		want        []string
	}{
		{"ess floor", 1000, 50, 3, 0, []string{ReasonESSRatio}},
		{"weight ceiling", 1000, 500, 250, 0, []string{ReasonMaxWeight}},
		{"zero support", 1000, 500, 3, 600, []string{ReasonZeroSupport}},
		{"all three", 1000, 50, 250, 600, []string{ReasonESSRatio, ReasonMaxWeight, ReasonZeroSupport}},
		{"boundary not crossed", 1000, 100, 100, 500, nil},
	}
	for _, c := range cases {
		got := codes(th.Check(c.n, c.ess, c.maxW, c.zeroSupport))
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCheckZeroDisables(t *testing.T) {
	if rs := (Thresholds{}).Check(1000, 1, 1e9, 1000); rs != nil {
		t.Fatalf("zero thresholds still degraded: %+v", rs)
	}
	if rs := (Thresholds{}).Check(0, 0, 0, 0); rs != nil {
		t.Fatalf("n=0 degraded: %+v", rs)
	}
}

func TestStaleAggregatesReason(t *testing.T) {
	r := StaleAggregatesReason(1500, 1000)
	if r.Code != ReasonStaleAggs {
		t.Fatalf("code %q, want %q", r.Code, ReasonStaleAggs)
	}
	if r.Observed != 1500 || r.Threshold != 1000 {
		t.Fatalf("observed/threshold %g/%g, want 1500/1000", r.Observed, r.Threshold)
	}
	if !strings.Contains(r.Detail, "1500 records") || !strings.Contains(r.Detail, "1000-record") {
		t.Fatalf("detail does not name both counts: %q", r.Detail)
	}
	// Deterministic like every other Reason constructor.
	if r != StaleAggregatesReason(1500, 1000) {
		t.Fatal("StaleAggregatesReason is not deterministic")
	}
}

func TestReasonJSONShape(t *testing.T) {
	rs := DefaultThresholds().Check(100, 2, 300, 80)
	if len(rs) != 3 {
		t.Fatalf("want 3 reasons, got %d", len(rs))
	}
	b, err := json.Marshal(rs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"code"`, `"observed"`, `"threshold"`, `"detail"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("reason JSON missing %s: %s", key, b)
		}
	}
	// Detail strings are pure functions of the inputs: two checks on the
	// same diagnostics serialize identically (bit-determinism contract).
	b2, _ := json.Marshal(DefaultThresholds().Check(100, 2, 300, 80))
	b1, _ := json.Marshal(rs)
	if string(b1) != string(b2) {
		t.Fatal("Check is not deterministic")
	}
}
