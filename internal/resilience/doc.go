// Package resilience is the repository's failure-handling layer: the
// pieces that let a trace-driven evaluation service degrade loudly
// instead of crashing or stalling when inputs, load or infrastructure
// go bad — the operational counterpart of the paper's §4.1 warning
// that thin-support estimates silently go wrong.
//
// It provides three independent tools, each consumed by a different
// layer of the system:
//
//   - Limiter: admission control for request handlers — a concurrency
//     cap plus a bounded wait queue, so overload is shed with an
//     explicit "retry later" instead of unbounded queueing (drevald
//     fronts /evaluate and /diagnose with one).
//
//   - Thresholds / Check: the graceful-degradation contract — given a
//     request's overlap diagnostics (ESS ratio, weight tail,
//     zero-support fraction), decide whether the estimate must be
//     flagged degraded and report machine-readable reasons, so callers
//     can return a robust fallback alongside the requested estimate.
//
//   - FaultPlan / Inject: deterministic, seed-driven fault injection.
//     Instrumented points in traceio readers, worker-pool tasks and
//     HTTP handlers call Inject(point); with no plan active that is a
//     single atomic load, and with a plan active the outcome of hit n
//     at a point is a pure function of (seed, point, n), so chaos
//     tests are reproducible.
//
// The package depends only on the standard library and is safe for
// concurrent use throughout.
package resilience
