module drnet

go 1.22
