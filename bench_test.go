// Package drnet_test holds the repository-level benchmark harness: one
// benchmark per paper figure (Figure 7a/7b/7c), one per extension
// experiment (E1–E7 from DESIGN.md), ablation benches for the design
// choices DESIGN.md calls out, and micro-benchmarks of the estimators
// themselves.
//
// The figure/experiment benches report the reproduced headline metric
// (mean relative evaluation error per estimator) via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates every number in
// EXPERIMENTS.md alongside the usual time/op and allocs/op.
package drnet_test

import (
	"testing"

	"drnet/internal/abr"
	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/experiments"
	"drnet/internal/mathx"
)

// benchRuns is the number of Monte Carlo runs per benchmark iteration.
// Small enough to keep -bench fast, large enough for stable metrics;
// cmd/experiments uses the paper's full 50 runs.
const benchRuns = 10

func reportRows(b *testing.B, res experiments.Result) {
	b.Helper()
	for _, row := range res.Rows {
		metric := row.Metric
		if metric == "" {
			metric = "rel-err"
		}
		b.ReportMetric(row.Summary.Mean, sanitize(row.Label)+"/"+sanitize(metric))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', ',', '=':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFigure7a regenerates Figure 7a (trace bias: WISE vs DR).
func BenchmarkFigure7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7a(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkFigure7b regenerates Figure 7b (model bias: FastMPC vs DR).
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7b(benchRuns, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkFigure7c regenerates Figure 7c (variance: CFA vs DR).
func BenchmarkFigure7c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7c(benchRuns, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkSecondOrderBias regenerates E1.
func BenchmarkSecondOrderBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SecondOrderBias(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkRandomnessSweep regenerates E2.
func BenchmarkRandomnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RandomnessSweep(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkNonStationaryReplay regenerates E3.
func BenchmarkNonStationaryReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NonStationaryReplay(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkWorldStateCorrection regenerates E4.
func BenchmarkWorldStateCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WorldStateCorrection(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkCouplingCorrection regenerates E5.
func BenchmarkCouplingCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CouplingCorrection(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkDimensionalitySweep regenerates E6.
func BenchmarkDimensionalitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DimensionalitySweep(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkRelayBias regenerates E7.
func BenchmarkRelayBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RelayBias(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkPolicySelection regenerates E8.
func BenchmarkPolicySelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PolicySelection(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkPropensityEstimation regenerates E9.
func BenchmarkPropensityEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PropensityEstimation(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkExplorationDesign regenerates E10.
func BenchmarkExplorationDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExplorationDesign(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkOnlineVsOffline regenerates E11.
func BenchmarkOnlineVsOffline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.OnlineVsOffline(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// BenchmarkCCReplayBias regenerates E12.
func BenchmarkCCReplayBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CCReplayBias(benchRuns, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, res)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (design-choice benches from DESIGN.md).

// figure7bCorpus builds a fixed ABR evaluation corpus once per bench.
func figure7bCorpus(b *testing.B) (*abr.Data, core.Policy[abr.Chunk, int], float64) {
	b.Helper()
	rng := mathx.NewRNG(99)
	s := experiments.Figure7bScenario()
	d, err := s.CollectMany(rng, 5)
	if err != nil {
		b.Fatal(err)
	}
	np := d.NewPolicy(0)
	return d, np, d.GroundTruth(np)
}

// BenchmarkAblationSelfNorm compares plain vs self-normalized DR on the
// Figure 7b corpus.
func BenchmarkAblationSelfNorm(b *testing.B) {
	d, np, truth := figure7bCorpus(b)
	model := core.RewardFunc[abr.Chunk, int](d.ModelReward)
	var plain, selfNorm float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{Clip: 8})
		if err != nil {
			b.Fatal(err)
		}
		s, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{Clip: 8, SelfNormalize: true})
		if err != nil {
			b.Fatal(err)
		}
		plain, selfNorm = p.Value, s.Value
	}
	b.ReportMetric(mathx.RelativeError(truth, plain), "plain/rel-err")
	b.ReportMetric(mathx.RelativeError(truth, selfNorm), "selfnorm/rel-err")
}

// BenchmarkAblationClipping sweeps the IPS/DR weight-clipping threshold
// on the Figure 7b corpus.
func BenchmarkAblationClipping(b *testing.B) {
	d, np, truth := figure7bCorpus(b)
	model := core.RewardFunc[abr.Chunk, int](d.ModelReward)
	clips := []float64{0, 2, 5, 8, 15}
	errs := make([]float64, len(clips))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range clips {
			dr, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{Clip: c})
			if err != nil {
				b.Fatal(err)
			}
			errs[j] = mathx.RelativeError(truth, dr.Value)
		}
	}
	for j, c := range clips {
		b.ReportMetric(errs[j], sanitize("clip")+formatClip(c)+"/rel-err")
	}
}

func formatClip(c float64) string {
	switch c {
	case 0:
		return "_off"
	default:
		return "_" + string(rune('0'+int(c)/10)) + string(rune('0'+int(c)%10))
	}
}

// BenchmarkAblationSwitchVsClip compares hard weight clipping against
// the SWITCH estimator at matched thresholds on the Figure 7b corpus.
func BenchmarkAblationSwitchVsClip(b *testing.B) {
	d, np, truth := figure7bCorpus(b)
	model := core.RewardFunc[abr.Chunk, int](d.ModelReward)
	var clipErr, switchErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{Clip: 8})
		if err != nil {
			b.Fatal(err)
		}
		s, err := core.SwitchDR(d.Trace, np, model, core.SwitchOptions{Tau: 8})
		if err != nil {
			b.Fatal(err)
		}
		clipErr = mathx.RelativeError(truth, c.Value)
		switchErr = mathx.RelativeError(truth, s.Value)
	}
	b.ReportMetric(clipErr, "clip8/rel-err")
	b.ReportMetric(switchErr, "switch8/rel-err")
}

// BenchmarkAblationKNN sweeps k in the CFA k-NN direct model.
func BenchmarkAblationKNN(b *testing.B) {
	rng := mathx.NewRNG(42)
	w := cfa.DefaultWorld()
	if err := w.Init(rng); err != nil {
		b.Fatal(err)
	}
	d, err := w.Collect(1000, rng)
	if err != nil {
		b.Fatal(err)
	}
	np := w.NewPolicy(0.4, rng)
	truth := d.GroundTruth(np)
	ks := []int{1, 3, 5, 10}
	errs := make([]float64, len(ks))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range ks {
			fit := func(tr core.Trace[cfa.Client, cfa.Decision]) (core.RewardModel[cfa.Client, cfa.Decision], error) {
				return (&cfa.Data{Trace: tr, World: d.World}).PerDecisionKNNModel(k)
			}
			dr, err := core.CrossFitDR(d.Trace, np, fit, 2, core.DROptions{})
			if err != nil {
				b.Fatal(err)
			}
			errs[j] = mathx.RelativeError(truth, dr.Value)
		}
	}
	for j, k := range ks {
		b.ReportMetric(errs[j], "k"+string(rune('0'+k/10))+string(rune('0'+k%10))+"/rel-err")
	}
}

// ---------------------------------------------------------------------
// Estimator micro-benchmarks: records/op throughput of DM, IPS, DR and
// ReplayDR on a large synthetic bandit trace.

func banditTrace(b *testing.B, n int) (core.Trace[float64, int], core.Policy[float64, int], core.RewardModel[float64, int]) {
	b.Helper()
	rng := mathx.NewRNG(7)
	old := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.3,
	}
	ctxs := make([]float64, n)
	for i := range ctxs {
		ctxs[i] = rng.Float64()
	}
	trueReward := func(x float64, d int) float64 { return x * float64(d+1) }
	tr := core.CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return trueReward(x, d) + rng.Normal(0, 0.2)
	}, rng)
	np := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.1,
	}
	return tr, np, core.RewardFunc[float64, int](trueReward)
}

const microN = 100000

func BenchmarkEstimatorDM(b *testing.B) {
	tr, np, model := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DirectMethod(tr, np, model); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorIPS(b *testing.B) {
	tr, np, _ := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IPS(tr, np, core.IPSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorDR(b *testing.B) {
	tr, np, model := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DoublyRobust(tr, np, model, core.DROptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorReplayDR(b *testing.B) {
	tr, np, model := banditTrace(b, microN)
	target := core.Stationary[float64, int]{Policy: np}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(int64(i))
		if _, err := core.ReplayDR[float64, int](tr, target, model, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}
